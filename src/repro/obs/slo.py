"""Latency SLOs: per-endpoint thresholds, good/total counts, burn rates.

An SLO here is "fraction of requests to endpoints matching *key* that
finish under *threshold* milliseconds must be at least *target*"
(target defaults to 99%).  The tracker keeps, per key:

* cumulative ``good`` / ``total`` event counts (Prometheus counters --
  the durable signal an external system would alert on), and
* two in-process burn-rate windows (5 minutes of 15 s buckets, 1 hour of
  60 s buckets) so ``/stats`` and ``/metrics`` can answer "how fast am I
  spending error budget *right now*" without an external store.

Burn rate is the standard multi-window definition: the window's bad
fraction divided by the error budget ``1 - target``.  1.0 means the
budget is being consumed exactly at the sustainable rate; 14.4 on the
1h window is the classic page-worthy threshold for a 99.9% / 30d SLO.

Keys are endpoint names (``allocate``, ``campaign``); a key matches an
endpoint label like ``"POST /allocate/batch"`` when ``/<key>`` appears
in it, longest key winning, so ``--slo-ms allocate=5,campaign=500``
covers ``/allocate``, ``/allocate/batch``, and every ``/campaign``
route without enumerating them.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .metrics import MetricsRegistry, Sample

#: Default objectives applied when ``--slo-ms`` is not given: interactive
#: allocates in 25 ms, campaign operations in 5 s.
DEFAULT_SLO_MS: Mapping[str, float] = {"allocate": 25.0, "campaign": 5000.0}

DEFAULT_TARGET = 0.99

#: (window label, window seconds, bucket seconds)
_WINDOWS: Tuple[Tuple[str, float, float], ...] = (
    ("5m", 300.0, 15.0),
    ("1h", 3600.0, 60.0),
)


def parse_slo_spec(spec: str) -> Dict[str, float]:
    """Parse ``"allocate=5,campaign=500"`` into {key: threshold_ms}."""
    out: Dict[str, float] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, _, value = item.partition("=")
        key = key.strip()
        if not key or not value.strip():
            raise ValueError(
                f"bad SLO spec item {item!r}; expected name=threshold_ms"
            )
        threshold_ms = float(value)
        if threshold_ms <= 0:
            raise ValueError(f"SLO threshold must be positive, got {item!r}")
        out[key] = threshold_ms
    if not out:
        raise ValueError(f"empty SLO spec {spec!r}")
    return out


class _Window:
    """Time-bucketed ring of (good, total) counts covering one window."""

    def __init__(self, window_s: float, bucket_s: float) -> None:
        self.window_s = window_s
        self.bucket_s = bucket_s
        self.num_buckets = int(window_s / bucket_s)
        # Each slot: [epoch bucket index, good, total].
        self._buckets: List[List[float]] = [
            [-1, 0, 0] for _ in range(self.num_buckets)
        ]

    def record(self, good: bool, now: float) -> None:
        index = int(now / self.bucket_s)
        slot = self._buckets[index % self.num_buckets]
        if slot[0] != index:
            slot[0] = index
            slot[1] = 0
            slot[2] = 0
        slot[1] += 1 if good else 0
        slot[2] += 1

    def totals(self, now: float) -> Tuple[int, int]:
        """(good, total) over buckets still inside the window at ``now``."""
        oldest = int(now / self.bucket_s) - self.num_buckets + 1
        good = total = 0
        for slot in self._buckets:
            if slot[0] >= oldest:
                good += int(slot[1])
                total += int(slot[2])
        return good, total

    def snapshot(self, now: float) -> List[List[int]]:
        """Live ``[epoch bucket index, good, total]`` rows at ``now``.

        Epoch bucket indices are ``int(wall_clock / bucket_s)`` -- the
        same value on every process of a cluster -- so rows from
        different processes merge exactly by summing per index.
        """
        oldest = int(now / self.bucket_s) - self.num_buckets + 1
        return sorted(
            [int(slot[0]), int(slot[1]), int(slot[2])]
            for slot in self._buckets
            if slot[0] >= oldest and slot[2] > 0
        )


class _Objective:
    """One SLO key's counters and windows."""

    def __init__(self, threshold_ms: float) -> None:
        self.threshold_s = threshold_ms / 1000.0
        self.threshold_ms = threshold_ms
        self.good = 0
        self.total = 0
        self.windows = {
            label: _Window(window_s, bucket_s)
            for label, window_s, bucket_s in _WINDOWS
        }

    def record(self, good: bool, now: float) -> None:
        self.good += 1 if good else 0
        self.total += 1
        for window in self.windows.values():
            window.record(good, now)


class SloTracker:
    """Per-endpoint latency objectives with burn-rate windows (thread-safe)."""

    def __init__(
        self,
        slo_ms: Optional[Mapping[str, float]] = None,
        target: float = DEFAULT_TARGET,
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {target}")
        self.target = target
        self._lock = threading.Lock()
        self._objectives = {
            key: _Objective(threshold_ms)
            for key, threshold_ms in (slo_ms or DEFAULT_SLO_MS).items()
        }

    def match(self, endpoint: str) -> Optional[str]:
        """The SLO key covering an endpoint label, longest key winning."""
        best: Optional[str] = None
        for key in self._objectives:
            if f"/{key}" in endpoint:
                if best is None or len(key) > len(best):
                    best = key
        return best

    def observe(
        self, endpoint: str, seconds: float, now: Optional[float] = None
    ) -> Optional[str]:
        """Record one request against its matching objective, if any.

        ``now`` is an epoch-seconds override for tests; returns the
        matched key (``None`` when the endpoint has no objective).
        """
        key = self.match(endpoint)
        if key is None:
            return None
        if now is None:
            now = time.time()
        with self._lock:
            objective = self._objectives[key]
            objective.record(seconds <= objective.threshold_s, now)
        return key

    def burn_rate(
        self, key: str, window: str, now: Optional[float] = None
    ) -> float:
        """One objective's burn rate over ``"5m"`` or ``"1h"``.

        0.0 when the window saw no events; 1.0 means the error budget is
        being spent exactly at the sustainable rate.
        """
        if now is None:
            now = time.time()
        with self._lock:
            objective = self._objectives[key]
            good, total = objective.windows[window].totals(now)
        if total == 0:
            return 0.0
        bad_fraction = (total - good) / total
        return bad_fraction / (1.0 - self.target)

    def to_json_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint."""
        if now is None:
            now = time.time()
        out: Dict[str, Any] = {"target": self.target, "objectives": {}}
        with self._lock:
            snapshot = [
                (key, obj.threshold_ms, obj.good, obj.total)
                for key, obj in sorted(self._objectives.items())
            ]
        for key, threshold_ms, good, total in snapshot:
            out["objectives"][key] = {
                "threshold_ms": threshold_ms,
                "good": good,
                "total": total,
                "compliance": (good / total) if total else 1.0,
                "burn_rate_5m": self.burn_rate(key, "5m", now),
                "burn_rate_1h": self.burn_rate(key, "1h", now),
            }
        return out

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Export good/bad epochs for cross-process merging.

        The payload carries, per objective, the cumulative counts plus
        every live burn-rate bucket keyed by its wall-clock epoch index
        (see :meth:`_Window.snapshot`).  Because all processes share
        wall-clock epochs, :func:`merged_burn_rates` can reconstruct the
        *cluster* burn rate exactly by summing rows per index.
        """
        if now is None:
            now = time.time()
        out: Dict[str, Any] = {"target": self.target, "objectives": {}}
        with self._lock:
            for key, objective in sorted(self._objectives.items()):
                out["objectives"][key] = {
                    "threshold_ms": objective.threshold_ms,
                    "good": objective.good,
                    "total": objective.total,
                    "windows": {
                        label: {
                            "bucket_s": window.bucket_s,
                            "num_buckets": window.num_buckets,
                            "buckets": window.snapshot(now),
                        }
                        for label, window in objective.windows.items()
                    },
                }
        return out

    # -- Prometheus sample functions (wired via MetricsRegistry.callback) --

    def _threshold_samples(self) -> List[Sample]:
        with self._lock:
            items = [
                (key, obj.threshold_s)
                for key, obj in sorted(self._objectives.items())
            ]
        return [("", {"slo": key}, value) for key, value in items]

    def _event_samples(self) -> List[Sample]:
        with self._lock:
            items = [
                (key, obj.good, obj.total)
                for key, obj in sorted(self._objectives.items())
            ]
        out: List[Sample] = []
        for key, good, total in items:
            out.append(("", {"slo": key, "outcome": "good"}, good))
            out.append(("", {"slo": key, "outcome": "bad"}, total - good))
        return out

    def _burn_rate_samples(self) -> List[Sample]:
        now = time.time()
        with self._lock:
            keys = sorted(self._objectives)
        return [
            ("", {"slo": key, "window": window}, self.burn_rate(key, window, now))
            for key in keys
            for window, _, _ in _WINDOWS
        ]

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Expose this tracker's families on a metrics registry."""
        registry.callback(
            "repro_slo_threshold_seconds",
            "Latency threshold of each SLO objective.",
            "gauge",
            self._threshold_samples,
        )
        registry.callback(
            "repro_slo_events_total",
            "Requests judged against each SLO, by outcome.",
            "counter",
            self._event_samples,
        )
        registry.callback(
            "repro_slo_burn_rate",
            "Error-budget burn rate per SLO over trailing windows.",
            "gauge",
            self._burn_rate_samples,
        )


def merged_burn_rates(
    snapshots: List[Mapping[str, Any]], now: Optional[float] = None
) -> Dict[str, Any]:
    """Cluster-wide SLO state from per-process :meth:`SloTracker.snapshot`\\ s.

    Epoch-bucket rows merge exactly (same wall-clock indices on every
    process); the result mirrors :meth:`SloTracker.to_json_dict` with the
    burn rates computed from the merged buckets.  Buckets that have aged
    out of a window by ``now`` are dropped before summing, so a stale
    snapshot cannot inflate a current burn rate.
    """
    if now is None:
        now = time.time()
    target = DEFAULT_TARGET
    merged: Dict[str, Dict[str, Any]] = {}
    for payload in snapshots:
        target = float(payload.get("target", target))
        for key, objective in payload.get("objectives", {}).items():
            entry = merged.setdefault(key, {
                "threshold_ms": float(objective.get("threshold_ms", 0.0)),
                "good": 0, "total": 0, "windows": {},
            })
            entry["good"] += int(objective.get("good", 0))
            entry["total"] += int(objective.get("total", 0))
            for label, window in objective.get("windows", {}).items():
                slot = entry["windows"].setdefault(label, {
                    "bucket_s": float(window["bucket_s"]),
                    "num_buckets": int(window["num_buckets"]),
                    "buckets": {},
                })
                for index, good, total in window.get("buckets", ()):
                    row = slot["buckets"].setdefault(int(index), [0, 0])
                    row[0] += int(good)
                    row[1] += int(total)
    out: Dict[str, Any] = {"target": target, "objectives": {}}
    for key, entry in sorted(merged.items()):
        burn: Dict[str, float] = {}
        for label, slot in entry["windows"].items():
            oldest = int(now / slot["bucket_s"]) - slot["num_buckets"] + 1
            good = total = 0
            for index, (row_good, row_total) in slot["buckets"].items():
                if index >= oldest:
                    good += row_good
                    total += row_total
            if total == 0:
                burn[label] = 0.0
            else:
                burn[label] = ((total - good) / total) / (1.0 - target)
        out["objectives"][key] = {
            "threshold_ms": entry["threshold_ms"],
            "good": entry["good"],
            "total": entry["total"],
            "compliance": (
                entry["good"] / entry["total"] if entry["total"] else 1.0
            ),
            **{f"burn_rate_{label}": value for label, value in sorted(burn.items())},
        }
    return out


__all__ = [
    "DEFAULT_SLO_MS",
    "DEFAULT_TARGET",
    "SloTracker",
    "merged_burn_rates",
    "parse_slo_spec",
]
