"""Runtime controller: re-run the REAP optimisation every activity period.

The controller is the piece of REAP that actually lives on the device: at the
start of every activity period :math:`T_P` it receives the energy budget
granted by the energy-allocation layer (harvest forecast + battery state),
solves the allocation LP and hands the resulting schedule to the device.  It
also exposes the runtime knob the paper highlights -- the user may change
``alpha`` between periods to shift emphasis between accuracy and active time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.allocator import AllocatorConfig, ReapAllocator
from repro.core.design_point import DesignPoint, validate_design_points
from repro.core.objective import validate_alpha
from repro.core.problem import ReapProblem
from repro.core.schedule import AllocationSeries, TimeAllocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W


@dataclass(frozen=True)
class ControllerDecision:
    """One controller invocation: the budget seen and the schedule chosen."""

    period_index: int
    energy_budget_j: float
    alpha: float
    allocation: TimeAllocation


class ReapController:
    """Periodic REAP decision maker.

    Parameters
    ----------
    design_points:
        Design points available at runtime (Pareto-optimal set).
    alpha:
        Initial accuracy/active-time trade-off parameter.
    period_s:
        Activity period in seconds.
    off_power_w:
        Off-state power draw.
    allocator:
        Optional pre-configured :class:`ReapAllocator`; a default reduced-form
        allocator is created when omitted.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        allocator: Optional[ReapAllocator] = None,
    ) -> None:
        validate_design_points(design_points)
        self.design_points = tuple(design_points)
        self._alpha = validate_alpha(alpha)
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.period_s = period_s
        self.off_power_w = off_power_w
        self.allocator = allocator or ReapAllocator(AllocatorConfig())
        self.decisions: List[ControllerDecision] = []

    # --- runtime preference ------------------------------------------------------
    @property
    def alpha(self) -> float:
        """Current accuracy/active-time trade-off parameter."""
        return self._alpha

    def set_alpha(self, alpha: float) -> None:
        """Change the trade-off parameter for subsequent periods."""
        self._alpha = validate_alpha(alpha)

    # --- decisions -----------------------------------------------------------------
    def build_problem(self, energy_budget_j: float) -> ReapProblem:
        """Build the optimisation problem for one period."""
        return ReapProblem(
            design_points=self.design_points,
            energy_budget_j=energy_budget_j,
            period_s=self.period_s,
            alpha=self._alpha,
            off_power_w=self.off_power_w,
        )

    def allocate(self, energy_budget_j: float) -> TimeAllocation:
        """Solve one period's allocation and record the decision."""
        problem = self.build_problem(energy_budget_j)
        allocation = self.allocator.solve(problem)
        self.decisions.append(
            ControllerDecision(
                period_index=len(self.decisions),
                energy_budget_j=energy_budget_j,
                alpha=self._alpha,
                allocation=allocation,
            )
        )
        return allocation

    def run(
        self,
        energy_budgets_j: Iterable[float],
        labels: Optional[Sequence[str]] = None,
    ) -> AllocationSeries:
        """Allocate every period of a budget trace and return the series.

        ``labels`` optionally annotates each period (for example the
        timestamp of the solar trace hour it corresponds to).
        """
        series = AllocationSeries()
        budgets = list(energy_budgets_j)
        if labels is not None and len(labels) != len(budgets):
            raise ValueError(
                f"{len(labels)} labels provided for {len(budgets)} budgets"
            )
        for index, budget in enumerate(budgets):
            allocation = self.allocate(budget)
            label = labels[index] if labels is not None else ""
            series.append(allocation, budget_j=budget, label=label)
        return series

    def reset(self) -> None:
        """Clear the recorded decision history."""
        self.decisions.clear()


class StaticController:
    """Baseline controller that always runs one fixed design point.

    It mirrors :class:`ReapController`'s interface so the simulator and the
    experiment harness can swap policies freely.  The device runs the chosen
    design point until the period's budget is exhausted, then turns off --
    exactly the static baselines of Section 5.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        static_name: str,
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
    ) -> None:
        validate_design_points(design_points)
        self.design_points = tuple(design_points)
        names = [dp.name for dp in self.design_points]
        if static_name not in names:
            raise KeyError(f"unknown design point {static_name!r}; have {names}")
        self.static_name = static_name
        self._alpha = validate_alpha(alpha)
        self.period_s = period_s
        self.off_power_w = off_power_w
        self.decisions: List[ControllerDecision] = []

    @property
    def alpha(self) -> float:
        """Trade-off parameter used when reporting objective values."""
        return self._alpha

    def set_alpha(self, alpha: float) -> None:
        """Change the reporting alpha (does not affect the static policy)."""
        self._alpha = validate_alpha(alpha)

    def allocate(self, energy_budget_j: float) -> TimeAllocation:
        """Allocate one period under the static policy."""
        from repro.core.problem import static_allocation

        problem = ReapProblem(
            design_points=self.design_points,
            energy_budget_j=energy_budget_j,
            period_s=self.period_s,
            alpha=self._alpha,
            off_power_w=self.off_power_w,
        )
        allocation = static_allocation(problem, self.static_name)
        self.decisions.append(
            ControllerDecision(
                period_index=len(self.decisions),
                energy_budget_j=energy_budget_j,
                alpha=self._alpha,
                allocation=allocation,
            )
        )
        return allocation

    def run(
        self,
        energy_budgets_j: Iterable[float],
        labels: Optional[Sequence[str]] = None,
    ) -> AllocationSeries:
        """Allocate every period of a budget trace under the static policy."""
        series = AllocationSeries()
        budgets = list(energy_budgets_j)
        if labels is not None and len(labels) != len(budgets):
            raise ValueError(
                f"{len(labels)} labels provided for {len(budgets)} budgets"
            )
        for index, budget in enumerate(budgets):
            allocation = self.allocate(budget)
            label = labels[index] if labels is not None else ""
            series.append(allocation, budget_j=budget, label=label)
        return series

    def reset(self) -> None:
        """Clear the recorded decision history."""
        self.decisions.clear()


__all__ = ["ControllerDecision", "ReapController", "StaticController"]
