"""Formulation of the REAP optimisation problem (Equations 1-4).

A :class:`ReapProblem` captures one instance of the runtime decision: a set
of design points, the activity period :math:`T_P`, the off-state power
:math:`P_{off}`, the trade-off parameter :math:`\\alpha` and the energy
budget :math:`E_b` granted for the period.  It can lower itself into a
:class:`~repro.core.lp.LinearProgram` in two equivalent ways:

* the **full** form with decision variables :math:`(t_1, ..., t_N, t_{off})`,
  one equality constraint (Equation 2) and one inequality (Equation 3); and
* the **reduced** form where :math:`t_{off} = T_P - \\sum_i t_i` has been
  substituted into the energy constraint, leaving only ``<=`` constraints
  with non-negative right-hand sides -- exactly the shape Algorithm 1
  assumes, so the slack basis is immediately feasible.

Both forms have the same optimal active-time vector; the reduced form is the
one the on-device procedure would solve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.design_point import (
    DesignPoint,
    canonical_design_key,
    validate_design_points,
)
from repro.core.lp import LinearProgram
from repro.core.objective import accuracy_weights, validate_alpha
from repro.core.schedule import TimeAllocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W


class BudgetTooSmallError(ValueError):
    """Raised when the energy budget cannot even cover the off-state draw."""


@dataclass(frozen=True)
class ReapProblem:
    """One instance of the REAP accuracy/active-time allocation problem.

    Parameters
    ----------
    design_points:
        The design points available to the runtime (typically the five
        Pareto-optimal DPs of Table 2).
    energy_budget_j:
        Energy budget :math:`E_b` for the period, in joules.
    period_s:
        Activity period :math:`T_P` in seconds (3600 s in the paper).
    alpha:
        Accuracy/active-time trade-off parameter.
    off_power_w:
        Power consumed in the off state (harvesting + monitoring circuitry).
    """

    design_points: Tuple[DesignPoint, ...]
    energy_budget_j: float
    period_s: float = ACTIVITY_PERIOD_S
    alpha: float = 1.0
    off_power_w: float = OFF_STATE_POWER_W

    def __post_init__(self) -> None:
        validate_design_points(self.design_points)
        object.__setattr__(self, "design_points", tuple(self.design_points))
        validate_alpha(self.alpha)
        if self.period_s <= 0:
            raise ValueError(f"period must be positive, got {self.period_s}")
        if self.energy_budget_j < 0:
            raise ValueError(
                f"energy budget must be non-negative, got {self.energy_budget_j}"
            )
        if self.off_power_w < 0:
            raise ValueError(
                f"off-state power must be non-negative, got {self.off_power_w}"
            )

    # --- convenience ------------------------------------------------------------
    @property
    def num_design_points(self) -> int:
        """Number of design points N."""
        return len(self.design_points)

    @cached_property
    def powers_w(self) -> np.ndarray:
        """Per-design-point power draws :math:`P_i` as a read-only vector.

        Cached on the (frozen) instance so repeated LP lowerings stop
        rebuilding an identical array each call.
        """
        powers = np.array([dp.power_w for dp in self.design_points])
        powers.setflags(write=False)
        return powers

    @cached_property
    def objective_weights(self) -> np.ndarray:
        """Objective weights :math:`a_i^{\\alpha}` (read-only, cached)."""
        weights = accuracy_weights(self.design_points, self.alpha)
        weights.setflags(write=False)
        return weights

    @property
    def min_required_energy_j(self) -> float:
        """Energy needed to stay off for the whole period (the 0.18 J floor)."""
        return self.off_power_w * self.period_s

    @property
    def max_useful_energy_j(self) -> float:
        """Energy needed to run the most power-hungry DP for the whole period.

        Budgets above this value cannot improve the objective further (the
        9.9 J saturation point of Section 5.2 for the Table 2 design points).
        """
        return max(dp.power_w for dp in self.design_points) * self.period_s

    @property
    def is_budget_feasible(self) -> bool:
        """True when the budget covers at least the off-state floor."""
        return self.energy_budget_j >= self.min_required_energy_j - 1e-12

    def canonical_key(self) -> tuple:
        """Canonical hashable encoding of this problem instance.

        Two problems encode identically exactly when they have the same
        optimum: the same design-point *set* (order does not matter -- the
        per-point tuples are sorted), period, off power, budget and alpha.
        This is the cache key of the allocation service
        (:mod:`repro.service`); the engine-level prefix matches
        :meth:`repro.core.batch.BatchAllocator.engine_key` so service
        requests group onto shared batch engines.
        """
        return (
            canonical_design_key(self.design_points),
            float(self.period_s),
            float(self.off_power_w),
            float(self.energy_budget_j),
            float(self.alpha),
        )

    def with_budget(self, energy_budget_j: float) -> "ReapProblem":
        """Return a copy of this problem with a different energy budget."""
        return replace(self, energy_budget_j=energy_budget_j)

    def with_alpha(self, alpha: float) -> "ReapProblem":
        """Return a copy of this problem with a different alpha."""
        return replace(self, alpha=alpha)

    # --- LP lowering -------------------------------------------------------------
    def to_reduced_lp(self) -> LinearProgram:
        """Lower to the reduced form with only ``<=`` constraints.

        Variables are the active times :math:`t_1..t_N`.  Substituting
        :math:`t_{off} = T_P - \\sum_i t_i` into Equation 3 yields

        .. math::

            \\sum_i (P_i - P_{off}) t_i \\le E_b - P_{off} T_P
            \\qquad\\text{and}\\qquad \\sum_i t_i \\le T_P .

        Raises :class:`BudgetTooSmallError` when the right-hand side of the
        energy row would be negative (budget below the off-state floor),
        because the all-slack starting basis of Algorithm 1 would then be
        infeasible.
        """
        if not self.is_budget_feasible:
            raise BudgetTooSmallError(
                f"budget {self.energy_budget_j} J is below the off-state floor "
                f"{self.min_required_energy_j} J"
            )
        n = self.num_design_points
        powers = self.powers_w
        weights = self.objective_weights / self.period_s

        a_ub = np.vstack(
            [
                np.ones(n),                       # sum t_i <= TP
                powers - self.off_power_w,        # energy after substitution
            ]
        )
        b_ub = np.array(
            [
                self.period_s,
                self.energy_budget_j - self.off_power_w * self.period_s,
            ]
        )
        names = [dp.name for dp in self.design_points]
        return LinearProgram(
            objective=weights,
            a_ub=a_ub,
            b_ub=b_ub,
            variable_names=names,
        )

    def to_full_lp(self) -> LinearProgram:
        """Lower to the full form with an explicit off-time variable.

        Variables are :math:`(t_1, ..., t_N, t_{off})`; Equation 2 appears as
        an equality constraint and Equation 3 as an inequality.
        """
        n = self.num_design_points
        powers = self.powers_w
        weights = self.objective_weights / self.period_s

        objective = np.concatenate([weights, [0.0]])
        a_eq = np.concatenate([np.ones(n), [1.0]]).reshape(1, -1)
        b_eq = np.array([self.period_s])
        a_ub = np.concatenate([powers, [self.off_power_w]]).reshape(1, -1)
        b_ub = np.array([self.energy_budget_j])
        names = [dp.name for dp in self.design_points] + ["t_off"]
        return LinearProgram(
            objective=objective,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            variable_names=names,
        )

    # --- solution packaging -------------------------------------------------------
    def allocation_from_times(
        self,
        times_s: Sequence[float],
        off_time_s: Optional[float] = None,
        budget_feasible: bool = True,
    ) -> TimeAllocation:
        """Package raw active times into a :class:`TimeAllocation`.

        ``off_time_s`` defaults to the remainder of the period; small negative
        values from floating-point round-off are clipped to zero.
        """
        times = [max(0.0, float(t)) for t in times_s]
        if len(times) != self.num_design_points:
            raise ValueError(
                f"expected {self.num_design_points} times, got {len(times)}"
            )
        total_active = sum(times)
        if total_active > self.period_s * (1 + 1e-9):
            # Round-off from the solver can push the total a hair over TP;
            # rescale proportionally, anything larger is a genuine error.
            if total_active > self.period_s * 1.001:
                raise ValueError(
                    f"active time {total_active} exceeds the period {self.period_s}"
                )
            scale = self.period_s / total_active
            times = [t * scale for t in times]
            total_active = self.period_s
        if off_time_s is None:
            off_time_s = max(0.0, self.period_s - total_active)
        return TimeAllocation(
            design_points=self.design_points,
            times_s=tuple(times),
            off_time_s=float(off_time_s),
            period_s=self.period_s,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
            budget_j=self.energy_budget_j,
            budget_feasible=budget_feasible,
        )

    def all_off_allocation(self, budget_feasible: bool = False) -> TimeAllocation:
        """Return the degenerate "stay off all period" allocation."""
        return TimeAllocation.all_off(
            design_points=self.design_points,
            period_s=self.period_s,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
            budget_j=self.energy_budget_j,
            budget_feasible=budget_feasible,
        )


def static_allocation(
    problem: ReapProblem,
    name: str,
) -> TimeAllocation:
    """Best allocation achievable by a *single* static design point.

    This is the baseline of Section 5: the device always runs design point
    ``name`` and simply turns off when the energy budget is exhausted.  The
    active time is therefore

    .. math::

        t = \\min\\left(T_P,\\;
            \\frac{E_b - P_{off} T_P}{P - P_{off}}\\right)

    (zero when the budget is below the off-state floor).
    """
    matches = [dp for dp in problem.design_points if dp.name == name]
    if not matches:
        raise KeyError(
            f"unknown design point {name!r}; have "
            f"{[dp.name for dp in problem.design_points]}"
        )
    dp = matches[0]
    if not problem.is_budget_feasible:
        return problem.all_off_allocation(budget_feasible=False)
    surplus = problem.energy_budget_j - problem.min_required_energy_j
    marginal_power = dp.power_w - problem.off_power_w
    if marginal_power <= 0:
        active_time = problem.period_s
    else:
        active_time = min(problem.period_s, surplus / marginal_power)
    return TimeAllocation.single_point(
        design_points=problem.design_points,
        name=name,
        active_time_s=active_time,
        period_s=problem.period_s,
        alpha=problem.alpha,
        off_power_w=problem.off_power_w,
        budget_j=problem.energy_budget_j,
    )


__all__ = ["BudgetTooSmallError", "ReapProblem", "static_allocation"]
