"""Sensitivity analysis of the REAP allocation problem.

Because the allocation problem is a linear program, its optimal value is a
piecewise-linear, concave function of the energy budget.  The slope of that
function -- the *marginal value of energy* -- tells the runtime how much
objective (for alpha = 1: how much expected accuracy) one extra joule of
budget would buy in the current period.  That quantity is useful beyond the
paper's evaluation: an energy-allocation layer can use it to decide which
period of the day deserves the next joule, and a user interface can report
whether the device is energy-starved (steep slope) or saturated (zero slope).

The module offers two complementary tools:

* :func:`marginal_value_of_energy` -- a numerically robust central-difference
  estimate of dJ*/dEb at a given budget;
* :func:`value_curve` -- the full J*(Eb) curve over a budget grid, together
  with the detected breakpoints where the optimal basis (the pair of design
  points in use) changes.

Both are evaluated through the vectorized batch engine
(:class:`repro.core.batch.BatchAllocator`), so a full value curve costs one
broadcast pass instead of one LP solve per budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import BatchAllocator
from repro.core.problem import ReapProblem


@dataclass(frozen=True)
class ValueCurve:
    """The optimal objective as a function of the energy budget."""

    budgets_j: np.ndarray
    objective_values: np.ndarray
    marginal_values_per_j: np.ndarray
    breakpoints_j: Tuple[float, ...]

    def value_at(self, budget_j: float) -> float:
        """Linearly interpolated optimal objective at ``budget_j``."""
        return float(np.interp(budget_j, self.budgets_j, self.objective_values))

    def marginal_at(self, budget_j: float) -> float:
        """Linearly interpolated marginal value of energy at ``budget_j``."""
        return float(np.interp(budget_j, self.budgets_j, self.marginal_values_per_j))

    @property
    def saturation_budget_j(self) -> float:
        """Smallest budget whose marginal value is (numerically) zero."""
        zero = np.nonzero(self.marginal_values_per_j <= 1e-9)[0]
        if zero.size == 0:
            return float("inf")
        return float(self.budgets_j[zero[0]])


def _optimal_objectives(problem: ReapProblem, budgets_j: np.ndarray) -> np.ndarray:
    """Optimal objective values over a whole budget grid in one batched pass."""
    engine = BatchAllocator.from_problem(problem)
    grid = engine.solve_budgets(np.maximum(budgets_j, 0.0), alpha=problem.alpha)
    return grid.objective[0]


def marginal_value_of_energy(
    problem: ReapProblem,
    step_j: float = 1e-3,
) -> float:
    """Central-difference estimate of dJ*/dEb at the problem's budget.

    The step is clipped so both evaluation points stay at or above the
    off-state floor (below the floor the problem is infeasible and the value
    is zero by convention).
    """
    if step_j <= 0:
        raise ValueError(f"step must be positive, got {step_j}")
    budget = problem.energy_budget_j
    lower = max(problem.min_required_energy_j, budget - step_j)
    upper = budget + step_j
    if upper <= lower:
        return 0.0
    value_lower, value_upper = _optimal_objectives(problem, np.array([lower, upper]))
    return (value_upper - value_lower) / (upper - lower)


def value_curve(
    problem: ReapProblem,
    budgets_j: Optional[Sequence[float]] = None,
    num_points: int = 80,
    breakpoint_tolerance: float = 1e-6,
) -> ValueCurve:
    """Compute J*(Eb) over a budget grid and locate its breakpoints.

    Breakpoints are detected as budgets where the finite-difference slope
    changes by more than ``breakpoint_tolerance`` (relative to the largest
    slope), i.e. where the optimal mix of design points switches.
    """
    if budgets_j is None:
        if num_points < 3:
            raise ValueError("num_points must be at least 3")
        budgets = np.linspace(
            problem.min_required_energy_j,
            problem.max_useful_energy_j * 1.05,
            num_points,
        )
    else:
        budgets = np.asarray(list(budgets_j), dtype=float)
        if budgets.size < 3:
            raise ValueError("at least three budgets are needed")
        budgets = np.sort(budgets)

    values = _optimal_objectives(problem, budgets)
    slopes = np.gradient(values, budgets)
    slopes = np.clip(slopes, 0.0, None)  # J* is non-decreasing in the budget

    # Breakpoints: where consecutive secant slopes differ noticeably.
    secants = np.diff(values) / np.diff(budgets)
    scale = max(np.max(np.abs(secants)), 1e-12)
    breakpoints: List[float] = []
    for index in range(1, secants.size):
        if abs(secants[index] - secants[index - 1]) > breakpoint_tolerance * scale:
            breakpoints.append(float(budgets[index]))
    return ValueCurve(
        budgets_j=budgets,
        objective_values=values,
        marginal_values_per_j=slopes,
        breakpoints_j=tuple(breakpoints),
    )


def energy_starvation_level(problem: ReapProblem) -> str:
    """Classify how energy-constrained the current period is.

    Returns one of ``"off"`` (budget below the standby floor),
    ``"starved"`` (even the lowest-power design point cannot run all period),
    ``"constrained"`` (the budget binds but the device can stay on) or
    ``"saturated"`` (more energy would not improve the objective).
    """
    if not problem.is_budget_feasible:
        return "off"
    min_power = min(dp.power_w for dp in problem.design_points)
    full_on_cheapest = min_power * problem.period_s
    if problem.energy_budget_j < full_on_cheapest:
        return "starved"
    if marginal_value_of_energy(problem) > 1e-9:
        return "constrained"
    return "saturated"


__all__ = [
    "ValueCurve",
    "energy_starvation_level",
    "marginal_value_of_energy",
    "value_curve",
]
