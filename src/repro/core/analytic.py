"""Analytic (vertex-enumeration) reference solver for the REAP problem.

The REAP LP has only two structural constraints (the time identity and the
energy budget), so every basic feasible solution activates at most two design
points.  This makes exhaustive vertex enumeration cheap and exact, which we
use for two purposes:

* an independent cross-check of the simplex implementation in the test-suite
  (property-based tests compare the two solvers on random instances); and
* a fast closed-form path for the common five-design-point case, useful when
  sweeping thousands of energy budgets in the benchmarks.

The enumeration considers:

1. the all-off vertex;
2. every single design point, active for as long as the budget (or the
   period) allows; and
3. every pair of design points with both the time and energy constraints
   binding (the "blend" vertices, e.g. the DP4/DP5 split at a 5 J budget).
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

from repro.core.problem import ReapProblem
from repro.core.schedule import TimeAllocation


def _single_point_vertex(problem: ReapProblem, index: int) -> Tuple[float, ...]:
    """Active-time vector using only design point ``index``."""
    dp = problem.design_points[index]
    surplus = problem.energy_budget_j - problem.min_required_energy_j
    marginal_power = dp.power_w - problem.off_power_w
    if marginal_power <= 0:
        active = problem.period_s
    else:
        active = min(problem.period_s, surplus / marginal_power)
    active = max(0.0, active)
    times = [0.0] * problem.num_design_points
    times[index] = active
    return tuple(times)


def _pair_vertex(
    problem: ReapProblem, i: int, j: int
) -> Optional[Tuple[float, ...]]:
    """Active-time vector with DPs ``i`` and ``j`` and both constraints binding.

    Solves::

        t_i + t_j = TP
        P_i t_i + P_j t_j = Eb

    and returns None when the solution has a negative component (the vertex
    is infeasible) or the two power draws coincide (the system is singular,
    in which case the single-point vertices already cover it).
    """
    dp_i = problem.design_points[i]
    dp_j = problem.design_points[j]
    power_gap = dp_i.power_w - dp_j.power_w
    if abs(power_gap) < 1e-15:
        return None
    t_i = (problem.energy_budget_j - dp_j.power_w * problem.period_s) / power_gap
    t_j = problem.period_s - t_i
    if t_i < -1e-9 or t_j < -1e-9:
        return None
    times = [0.0] * problem.num_design_points
    times[i] = max(0.0, t_i)
    times[j] = max(0.0, t_j)
    return tuple(times)


def enumerate_vertices(problem: ReapProblem) -> List[Tuple[float, ...]]:
    """Enumerate candidate optimal active-time vectors (LP vertices).

    The returned vectors are all feasible for the problem (time identity via
    an implicit off time, energy within budget up to round-off).
    """
    vertices: List[Tuple[float, ...]] = []
    n = problem.num_design_points
    vertices.append(tuple(0.0 for _ in range(n)))
    if not problem.is_budget_feasible:
        return vertices
    for index in range(n):
        vertices.append(_single_point_vertex(problem, index))
    for i, j in combinations(range(n), 2):
        vertex = _pair_vertex(problem, i, j)
        if vertex is not None:
            vertices.append(vertex)
    return vertices


def solve_analytic(problem: ReapProblem) -> TimeAllocation:
    """Solve the REAP problem exactly by vertex enumeration.

    Returns the feasible vertex with the highest objective value.  When the
    budget is below the off-state floor the all-off allocation is returned
    with ``budget_feasible=False``.
    """
    if not problem.is_budget_feasible:
        return problem.all_off_allocation(budget_feasible=False)

    weights = problem.objective_weights
    best_times: Optional[Tuple[float, ...]] = None
    best_value = float("-inf")
    for times in enumerate_vertices(problem):
        if sum(times) > problem.period_s * (1 + 1e-9):
            continue
        off_time = problem.period_s - sum(times)
        energy = (
            sum(dp.power_w * t for dp, t in zip(problem.design_points, times))
            + problem.off_power_w * off_time
        )
        if energy > problem.energy_budget_j * (1 + 1e-9) + 1e-12:
            continue
        value = sum(w * t for w, t in zip(weights, times)) / problem.period_s
        if value > best_value + 1e-15:
            best_value = value
            best_times = times
    if best_times is None:
        return problem.all_off_allocation(budget_feasible=True)
    return problem.allocation_from_times(best_times)


__all__ = ["enumerate_vertices", "solve_analytic"]
