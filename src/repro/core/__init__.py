"""Core REAP machinery: design points, the allocation LP and its solvers.

This package contains the paper's primary contribution:

* :mod:`repro.core.design_point` / :mod:`repro.core.pareto` -- the
  energy-accuracy design-point abstraction and Pareto-front selection.
* :mod:`repro.core.lp` / :mod:`repro.core.simplex` -- a from-scratch dense
  tableau simplex solver (Algorithm 1) plus a general two-phase variant.
* :mod:`repro.core.problem` / :mod:`repro.core.objective` -- the
  accuracy/active-time optimisation problem (Equations 1-4).
* :mod:`repro.core.allocator` / :mod:`repro.core.controller` -- the runtime
  layer that re-solves the problem every activity period.
* :mod:`repro.core.analytic` -- an exact vertex-enumeration reference solver.
* :mod:`repro.core.batch` -- the vectorized batch engine that solves whole
  budget x alpha grids of REAP problems in one NumPy pass (the fast path
  behind the sweeps, ablations and month-long campaign simulations).
"""

from repro.core.allocator import AllocatorConfig, ReapAllocator
from repro.core.analytic import enumerate_vertices, solve_analytic
from repro.core.batch import (
    BatchAllocator,
    BatchArrays,
    BatchGridResult,
    ConsumptionCurve,
    ConsumptionCurveError,
    StackedConsumptionCurves,
    StaticSeries,
)
from repro.core.controller import ControllerDecision, ReapController, StaticController
from repro.core.design_point import (
    DesignPoint,
    EnergyBreakdown,
    ExecutionBreakdown,
    sort_by_accuracy,
    sort_by_power,
    validate_design_points,
)
from repro.core.lp import (
    InfeasibleProblemError,
    LPError,
    LPSolution,
    LPStatus,
    LinearProgram,
    UnboundedProblemError,
)
from repro.core.objective import (
    accuracy_weights,
    active_time_fraction,
    expected_accuracy,
    objective_value,
    validate_alpha,
)
from repro.core.pareto import (
    dominated_points,
    hypervolume_2d,
    is_dominated,
    pareto_front,
    pareto_staircase,
    select_pareto_subset,
)
from repro.core.problem import BudgetTooSmallError, ReapProblem, static_allocation
from repro.core.schedule import AllocationSeries, TimeAllocation
from repro.core.sensitivity import (
    ValueCurve,
    energy_starvation_level,
    marginal_value_of_energy,
    value_curve,
)
from repro.core.simplex import (
    PivotRule,
    SimplexSolver,
    SimplexStats,
    simplex_max_leq,
    solve_lp,
)

__all__ = [
    "AllocationSeries",
    "AllocatorConfig",
    "BatchAllocator",
    "BatchArrays",
    "BatchGridResult",
    "ConsumptionCurve",
    "ConsumptionCurveError",
    "StackedConsumptionCurves",
    "BudgetTooSmallError",
    "ControllerDecision",
    "DesignPoint",
    "EnergyBreakdown",
    "ExecutionBreakdown",
    "InfeasibleProblemError",
    "LPError",
    "LPSolution",
    "LPStatus",
    "LinearProgram",
    "PivotRule",
    "ReapAllocator",
    "ReapController",
    "ReapProblem",
    "SimplexSolver",
    "SimplexStats",
    "StaticController",
    "StaticSeries",
    "TimeAllocation",
    "UnboundedProblemError",
    "ValueCurve",
    "accuracy_weights",
    "active_time_fraction",
    "dominated_points",
    "energy_starvation_level",
    "enumerate_vertices",
    "expected_accuracy",
    "marginal_value_of_energy",
    "hypervolume_2d",
    "is_dominated",
    "objective_value",
    "pareto_front",
    "pareto_staircase",
    "select_pareto_subset",
    "simplex_max_leq",
    "solve_analytic",
    "solve_lp",
    "sort_by_accuracy",
    "sort_by_power",
    "static_allocation",
    "validate_alpha",
    "validate_design_points",
    "value_curve",
]
