"""Time-allocation and schedule containers produced by the REAP optimiser.

A :class:`TimeAllocation` is the answer to one instance of the optimisation
problem: how many seconds of the activity period to spend at each design
point and how long to stay off.  An :class:`AllocationSeries` strings many
allocations together (one per activity period), which is the shape of the
month-long solar case study of Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.design_point import DesignPoint
from repro.core.objective import objective_value, validate_alpha


@dataclass(frozen=True)
class TimeAllocation:
    """Allocation of one activity period across design points and off time.

    Attributes
    ----------
    design_points:
        The design points the optimiser could choose from, in a fixed order.
    times_s:
        Seconds allocated to each design point (aligned with
        ``design_points``).
    off_time_s:
        Seconds spent in the off state.
    period_s:
        Activity period :math:`T_P` in seconds.
    alpha:
        Trade-off parameter the allocation was optimised for.
    off_power_w:
        Power draw of the off state (harvesting/monitoring circuitry).
    budget_j:
        The energy budget the allocation was computed for (informational).
    budget_feasible:
        False when the budget was below the off-state floor and the
        allocation is a best-effort "stay off" fallback.
    """

    design_points: Tuple[DesignPoint, ...]
    times_s: Tuple[float, ...]
    off_time_s: float
    period_s: float
    alpha: float = 1.0
    off_power_w: float = 0.0
    budget_j: Optional[float] = None
    budget_feasible: bool = True

    def __post_init__(self) -> None:
        if len(self.design_points) != len(self.times_s):
            raise ValueError(
                f"{len(self.design_points)} design points but "
                f"{len(self.times_s)} time values"
            )
        if self.period_s <= 0:
            raise ValueError(f"period must be positive, got {self.period_s}")
        if self.off_time_s < -1e-6:
            raise ValueError(f"off time must be non-negative, got {self.off_time_s}")
        for dp, t in zip(self.design_points, self.times_s):
            if t < -1e-6:
                raise ValueError(f"negative time {t} allocated to {dp.name}")
        validate_alpha(self.alpha)

    # --- construction helpers ------------------------------------------------
    @classmethod
    def all_off(
        cls,
        design_points: Sequence[DesignPoint],
        period_s: float,
        alpha: float = 1.0,
        off_power_w: float = 0.0,
        budget_j: Optional[float] = None,
        budget_feasible: bool = True,
    ) -> "TimeAllocation":
        """Return an allocation where the device stays off the whole period."""
        return cls(
            design_points=tuple(design_points),
            times_s=tuple(0.0 for _ in design_points),
            off_time_s=period_s,
            period_s=period_s,
            alpha=alpha,
            off_power_w=off_power_w,
            budget_j=budget_j,
            budget_feasible=budget_feasible,
        )

    @classmethod
    def single_point(
        cls,
        design_points: Sequence[DesignPoint],
        name: str,
        active_time_s: float,
        period_s: float,
        alpha: float = 1.0,
        off_power_w: float = 0.0,
        budget_j: Optional[float] = None,
    ) -> "TimeAllocation":
        """Return an allocation that uses a single named design point."""
        if active_time_s < 0 or active_time_s > period_s + 1e-9:
            raise ValueError(
                f"active time {active_time_s} outside [0, {period_s}]"
            )
        names = [dp.name for dp in design_points]
        if name not in names:
            raise KeyError(f"unknown design point {name!r}; have {names}")
        times = [active_time_s if dp.name == name else 0.0 for dp in design_points]
        return cls(
            design_points=tuple(design_points),
            times_s=tuple(times),
            off_time_s=max(0.0, period_s - active_time_s),
            period_s=period_s,
            alpha=alpha,
            off_power_w=off_power_w,
            budget_j=budget_j,
        )

    # --- lookups --------------------------------------------------------------
    def time_for(self, name: str) -> float:
        """Seconds allocated to the design point called ``name``."""
        for dp, t in zip(self.design_points, self.times_s):
            if dp.name == name:
                return t
        raise KeyError(f"unknown design point {name!r}")

    def share_for(self, name: str) -> float:
        """Fraction of the *active* time spent at design point ``name``."""
        active = self.active_time_s
        if active <= 0.0:
            return 0.0
        return self.time_for(name) / active

    def as_dict(self) -> Dict[str, float]:
        """Return a mapping from design point name to allocated seconds."""
        return {dp.name: t for dp, t in zip(self.design_points, self.times_s)}

    # --- derived metrics --------------------------------------------------------
    @property
    def active_time_s(self) -> float:
        """Total time the device is active (any design point)."""
        return float(sum(self.times_s))

    @property
    def active_fraction(self) -> float:
        """Active time as a fraction of the period."""
        return self.active_time_s / self.period_s

    @property
    def total_time_s(self) -> float:
        """Active plus off time (should equal the period)."""
        return self.active_time_s + self.off_time_s

    @property
    def expected_accuracy(self) -> float:
        """Expected accuracy over the period (alpha = 1 objective)."""
        return objective_value(
            self.times_s, self.design_points, alpha=1.0, period_s=self.period_s
        )

    @property
    def objective(self) -> float:
        """Objective value :math:`J(t)` at this allocation's own alpha."""
        return self.objective_at(self.alpha)

    def objective_at(self, alpha: float) -> float:
        """Objective value :math:`J(t)` evaluated at an arbitrary alpha."""
        return objective_value(
            self.times_s, self.design_points, alpha=alpha, period_s=self.period_s
        )

    @property
    def active_energy_j(self) -> float:
        """Energy consumed while active, in joules."""
        return float(
            sum(dp.power_w * t for dp, t in zip(self.design_points, self.times_s))
        )

    @property
    def off_energy_j(self) -> float:
        """Energy consumed in the off state, in joules."""
        return self.off_power_w * self.off_time_s

    @property
    def energy_j(self) -> float:
        """Total energy consumed over the period, in joules."""
        return self.active_energy_j + self.off_energy_j

    def energy_by_design_point(self) -> Dict[str, float]:
        """Energy in joules attributed to each design point (plus ``"off"``)."""
        breakdown = {
            dp.name: dp.power_w * t
            for dp, t in zip(self.design_points, self.times_s)
        }
        breakdown["off"] = self.off_energy_j
        return breakdown

    def activities_processed(self) -> float:
        """Number of activity windows processed over the period.

        Computed from each design point's activity window length; fractional
        values are kept (the simulator rounds when it needs integers).
        """
        return float(
            sum(
                t / dp.activity_period_s
                for dp, t in zip(self.design_points, self.times_s)
                if dp.activity_period_s > 0
            )
        )

    # --- consistency checks --------------------------------------------------
    def check(self, budget_j: Optional[float] = None, tolerance: float = 1e-6) -> None:
        """Assert the allocation satisfies the problem constraints.

        Raises ``ValueError`` when the time-budget identity (Equation 2) or
        the energy constraint (Equation 3) is violated beyond ``tolerance``.
        ``budget_j`` overrides the stored budget when provided.
        """
        if abs(self.total_time_s - self.period_s) > tolerance * max(1.0, self.period_s):
            raise ValueError(
                f"time constraint violated: active {self.active_time_s} + off "
                f"{self.off_time_s} != period {self.period_s}"
            )
        budget = budget_j if budget_j is not None else self.budget_j
        if budget is not None and self.budget_feasible:
            if self.energy_j > budget + tolerance * max(1.0, budget):
                raise ValueError(
                    f"energy constraint violated: consumed {self.energy_j} J "
                    f"> budget {budget} J"
                )

    def scaled(self, factor: float) -> "TimeAllocation":
        """Return a copy with every time (active and off) scaled by ``factor``.

        Useful for converting an hourly allocation into a shorter simulation
        slice.  The period scales with the times so the duty cycle and
        objective value are preserved.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return TimeAllocation(
            design_points=self.design_points,
            times_s=tuple(t * factor for t in self.times_s),
            off_time_s=self.off_time_s * factor,
            period_s=self.period_s * factor,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
            budget_j=None if self.budget_j is None else self.budget_j * factor,
            budget_feasible=self.budget_feasible,
        )


@dataclass
class AllocationSeries:
    """A sequence of per-period allocations (for example one month of hours).

    The series carries the budgets it was computed for so that aggregate
    reports can relate performance to harvested energy.
    """

    allocations: List[TimeAllocation] = field(default_factory=list)
    budgets_j: List[float] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    def append(
        self,
        allocation: TimeAllocation,
        budget_j: Optional[float] = None,
        label: str = "",
    ) -> None:
        """Append one period's allocation to the series."""
        self.allocations.append(allocation)
        self.budgets_j.append(
            budget_j if budget_j is not None else (allocation.budget_j or 0.0)
        )
        self.labels.append(label)

    def __len__(self) -> int:
        return len(self.allocations)

    def __iter__(self) -> Iterator[TimeAllocation]:
        return iter(self.allocations)

    def __getitem__(self, index: int) -> TimeAllocation:
        return self.allocations[index]

    # --- aggregate metrics ------------------------------------------------------
    @property
    def total_active_time_s(self) -> float:
        """Total active time across the series in seconds."""
        return float(sum(a.active_time_s for a in self.allocations))

    @property
    def total_energy_j(self) -> float:
        """Total energy consumed across the series in joules."""
        return float(sum(a.energy_j for a in self.allocations))

    @property
    def mean_expected_accuracy(self) -> float:
        """Mean per-period expected accuracy."""
        if not self.allocations:
            return 0.0
        return float(np.mean([a.expected_accuracy for a in self.allocations]))

    def mean_objective(self, alpha: Optional[float] = None) -> float:
        """Mean per-period objective value at ``alpha`` (or each allocation's own)."""
        if not self.allocations:
            return 0.0
        if alpha is None:
            return float(np.mean([a.objective for a in self.allocations]))
        return float(np.mean([a.objective_at(alpha) for a in self.allocations]))

    def objective_values(self, alpha: Optional[float] = None) -> np.ndarray:
        """Per-period objective values as an array."""
        if alpha is None:
            return np.array([a.objective for a in self.allocations])
        return np.array([a.objective_at(alpha) for a in self.allocations])

    def active_times_s(self) -> np.ndarray:
        """Per-period active times as an array."""
        return np.array([a.active_time_s for a in self.allocations])

    def expected_accuracies(self) -> np.ndarray:
        """Per-period expected accuracies as an array."""
        return np.array([a.expected_accuracy for a in self.allocations])

    def time_share_by_design_point(self) -> Dict[str, float]:
        """Aggregate fraction of total active time spent at each design point."""
        totals: Dict[str, float] = {}
        for allocation in self.allocations:
            for name, t in allocation.as_dict().items():
                totals[name] = totals.get(name, 0.0) + t
        active = sum(totals.values())
        if active <= 0:
            return {name: 0.0 for name in totals}
        return {name: t / active for name, t in totals.items()}


__all__ = ["AllocationSeries", "TimeAllocation"]
