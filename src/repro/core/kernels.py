"""Accelerated kernels for the three hot loops behind the engine key.

The reproduction's hot paths are, after PRs 1-5, three tight array
programs:

1. :meth:`~repro.core.batch.BatchAllocator.solve_arrays` -- candidate-vertex
   scoring and argmax over a budget vector,
2. the :class:`~repro.energy.fleet.BatteryScan` grant/settle recurrence over
   the piecewise-linear consumption curve (the one loop NumPy cannot
   vectorize away: each period's budget depends on the previous period's
   consumption), and
3. :meth:`~repro.planning.horizon.MpcPlanner.sustainable` -- the MPC grid
   refinement's window projection.

This module provides the *raw-speed tier* for all three, selected by a
``backend`` string threaded through the engines:

``"numpy"``
    The existing float64 reference implementations (unchanged, and still
    the cross-checked source of truth).
``"compiled"``
    Numba-jitted scalar loops when Numba is importable, with a **graceful
    pure-Python/NumPy fallback** when it is not (the container image does
    not ship Numba; CI has an optional-deps job that does).  Agreement
    with the reference is 1e-9 on objectives, trajectories and plan
    budgets.
``"float32"``
    Single-precision SIMD-friendly NumPy paths (half the memory traffic,
    wider vector lanes).  Agreement with the reference is 1e-4.

Design notes
------------
The compiled/float32 ``solve_arrays`` path does not re-enumerate the
``1 + N + N(N-1)/2`` candidate vertices per budget.  Because the REAP LP's
value function ``J*(E)`` is the **upper concave, non-decreasing hull** of
the pure-vertex points ``{(E_floor, 0)} U {(P_i * T, w_i * T)}`` (flat past
the last hull vertex), a solve collapses to one ``searchsorted`` over the
hull breakpoints plus a linear blend of the two bracketing hull vertices:
``O(B log N)`` instead of ``O(B * N^2)``, with bit-equal objectives at the
hull vertices.  The hull only exists when every design point out-draws the
off state (the same precondition as
:meth:`~repro.core.batch.BatchAllocator.consumption_curve`); degenerate
sets fall back to the reference path.

Every public helper in this module either returns plain arrays or ``None``
meaning "no fast path applies here -- use the reference"; callers never
need to know whether Numba is present.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Backend names accepted by the engines (first one is the default).
BACKENDS = ("numpy", "compiled", "float32")

try:  # pragma: no cover - exercised only in the optional-deps CI job
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the common, numba-less environment
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """No-op decorator stand-in so jitted defs still parse."""

        if args and callable(args[0]):
            return args[0]

        def wrap(function):
            return function

        return wrap


#: Set on the first Numba compile/dispatch failure: the fallback becomes
#: permanent for the process rather than re-raising on every call.
_NUMBA_BROKEN = False


def validate_backend(backend: str) -> str:
    """Check a backend name (raises ``ValueError`` when unknown)."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def numba_ready() -> bool:
    """True when the ``compiled`` backend can actually jit."""
    return HAVE_NUMBA and not _NUMBA_BROKEN


def _numba_call(jitted, *args):
    """Run a jitted kernel, permanently falling back on any Numba failure."""
    global _NUMBA_BROKEN
    try:
        jitted(*args)
        return True
    except Exception:  # pragma: no cover - only reachable with a broken numba
        _NUMBA_BROKEN = True
        return False


# ---------------------------------------------------------------------------
# Kernel 1: solve_arrays via the concave value hull
# ---------------------------------------------------------------------------
def build_solve_tables(
    powers: np.ndarray,
    accuracies: np.ndarray,
    alpha: float,
    period_s: float,
    off_power_w: float,
    dtype=np.float64,
) -> Optional[tuple]:
    """Precompute the value hull of one (engine, alpha) pair.

    Returns ``(hull_energy, hull_value, hull_index, accuracies)`` where the
    hull arrays hold one entry per hull vertex -- vertex 0 is the all-off
    floor (``hull_index[0] == -1``), later vertices are design points in
    increasing energy.  Returns ``None`` when the hull does not exist (a
    design point draws no more than the off state), in which case callers
    must use the reference candidate enumeration.
    """
    marginal = powers - off_power_w
    if np.any(marginal <= 0):
        return None
    weights = accuracies**alpha
    energies = powers * period_s
    values = weights * period_s
    floor = off_power_w * period_s

    order = np.argsort(energies, kind="stable")
    hull_e = [float(floor)]
    hull_v = [0.0]
    hull_i = [-1]
    for i in order:
        energy, value = float(energies[i]), float(values[i])
        if value <= hull_v[-1]:
            continue  # dominated: no extra value for the extra energy
        # Pop hull vertices that fall below the chord to the new point
        # (standard monotone-chain upper hull on energy-sorted points).
        while len(hull_e) >= 2 and (value - hull_v[-2]) * (
            hull_e[-1] - hull_e[-2]
        ) >= (hull_v[-1] - hull_v[-2]) * (energy - hull_e[-2]):
            hull_e.pop()
            hull_v.pop()
            hull_i.pop()
        hull_e.append(energy)
        hull_v.append(value)
        hull_i.append(int(i))
    return (
        np.asarray(hull_e, dtype=dtype),
        np.asarray(hull_v, dtype=dtype),
        np.asarray(hull_i, dtype=np.int64),
        np.asarray(accuracies, dtype=dtype),
    )


@njit(cache=False)
def _hull_solve_jit(  # pragma: no cover - requires numba
    budgets, hull_e, hull_v, hull_i, acc, period, floor,
    times, feasible, objective, accuracy, active, energy,
):
    num_budgets = budgets.shape[0]
    num_vertices = hull_e.shape[0]
    for row in range(num_budgets):
        budget = budgets[row]
        if budget < floor - 1e-12:
            feasible[row] = False
            energy[row] = floor
            continue
        feasible[row] = True
        clamped = budget
        if clamped > hull_e[num_vertices - 1]:
            clamped = hull_e[num_vertices - 1]
        if clamped < hull_e[0]:
            clamped = hull_e[0]
        lo, hi = 0, num_vertices
        while lo < hi:
            mid = (lo + hi) // 2
            if hull_e[mid] <= clamped:
                lo = mid + 1
            else:
                hi = mid
        k = lo - 1
        if k > num_vertices - 2:
            k = num_vertices - 2
        if k < 0:
            k = 0
        lam = (clamped - hull_e[k]) / (hull_e[k + 1] - hull_e[k])
        t_right = lam * period
        t_left = period - t_right
        left, right = hull_i[k], hull_i[k + 1]
        times[row, right] = t_right
        if left >= 0:
            times[row, left] = t_left
            active[row] = period
            accuracy[row] = (t_left * acc[left] + t_right * acc[right]) / period
        else:
            active[row] = t_right
            accuracy[row] = t_right * acc[right] / period
        objective[row] = (hull_v[k] + lam * (hull_v[k + 1] - hull_v[k])) / period
        energy[row] = clamped


def _hull_solve_numpy(
    budgets: np.ndarray, tables: tuple, period_s: float, num_points: int, dtype
) -> tuple:
    hull_e, hull_v, hull_i, acc = tables
    b = budgets.astype(dtype, copy=False)
    period = dtype(period_s)
    floor = hull_e[0]
    feasible = b >= floor - dtype(1e-12)
    clamped = np.clip(b, floor, hull_e[-1])
    k = np.searchsorted(hull_e, clamped, side="right") - 1
    np.clip(k, 0, hull_e.size - 2, out=k)
    lam = (clamped - hull_e[k]) / (hull_e[k + 1] - hull_e[k])
    t_right = np.where(feasible, lam * period, dtype(0.0))
    left, right = hull_i[k], hull_i[k + 1]
    has_left = left >= 0
    t_left = np.where(has_left & feasible, period - t_right, dtype(0.0))
    times = np.zeros((b.size, num_points), dtype=dtype)
    rows = np.arange(b.size)
    times[rows, right] = t_right
    lr = rows[has_left]
    times[lr, left[has_left]] = t_left[has_left]
    value = hull_v[k] + lam * (hull_v[k + 1] - hull_v[k])
    objective = np.where(feasible, value / period, dtype(0.0))
    active = t_left + t_right
    acc_left = np.where(has_left, acc[np.maximum(left, 0)], dtype(0.0))
    accuracy = np.where(
        feasible, (t_left * acc_left + t_right * acc[right]) / period, dtype(0.0)
    )
    energy = np.where(feasible, clamped, floor)
    return times, feasible, objective, accuracy, active, energy


def hull_solve(
    budgets: np.ndarray,
    tables: tuple,
    period_s: float,
    num_points: int,
    backend: str,
) -> tuple:
    """Solve a budget vector against precomputed hull tables.

    Returns float64 ``(times, feasible, objective, accuracy, active,
    energy)`` matching the reference :class:`~repro.core.batch.BatchArrays`
    field layout.  ``tables`` must come from :func:`build_solve_tables`
    built at the matching dtype (float64 for ``compiled``, float32 for
    ``float32``).
    """
    if backend == "compiled" and numba_ready():
        hull_e, hull_v, hull_i, acc = tables
        b = np.ascontiguousarray(budgets, dtype=np.float64)
        times = np.zeros((b.size, num_points))
        feasible = np.empty(b.size, dtype=np.bool_)
        objective = np.zeros(b.size)
        accuracy = np.zeros(b.size)
        active = np.zeros(b.size)
        energy = np.zeros(b.size)
        if _numba_call(
            _hull_solve_jit,
            b, hull_e, hull_v, hull_i, acc,
            float(period_s), float(hull_e[0]),
            times, feasible, objective, accuracy, active, energy,
        ):
            return times, feasible, objective, accuracy, active, energy
    dtype = np.float32 if backend == "float32" else np.float64
    out = _hull_solve_numpy(budgets, tables, period_s, num_points, dtype)
    if dtype is np.float64:
        return out
    times, feasible, objective, accuracy, active, energy = out
    return (
        times.astype(np.float64),
        feasible,
        objective.astype(np.float64),
        accuracy.astype(np.float64),
        active.astype(np.float64),
        energy.astype(np.float64),
    )


# ---------------------------------------------------------------------------
# Kernel 2: the BatteryScan grant/settle recurrence
# ---------------------------------------------------------------------------
#: Fleet width above which the pure-Python scalar fallback loses to the
#: vectorized reference (measured crossover is ~24 devices).
_SCALAR_SCAN_MAX_DEVICES = 24


@njit(cache=False)
def _battery_scan_jit(  # pragma: no cover - requires numba
    harvest, initial, capacity, target, max_draw, min_budget, ce, de,
    breakpoints, anchors, values, slopes,
    budgets, consumed, charges,
):
    num_periods, num_devices = harvest.shape
    num_breaks = breakpoints.shape[0]
    for d in range(num_devices):
        charges[0, d] = initial[d]
    for t in range(num_periods):
        for d in range(num_devices):
            h = harvest[t, d]
            c = charges[t, d]
            # grant: levelling draw + floor top-up (HarvestFollowingAllocator)
            contribution = c - target[d]
            if contribution < 0.0:
                contribution = 0.0
            elif contribution > max_draw[d]:
                contribution = max_draw[d]
            shortfall = min_budget[d] - (h + contribution)
            extra = c * de[d] - contribution
            if shortfall < extra:
                extra = shortfall
            if extra > 0.0:
                contribution = contribution + extra
            budget = h + contribution
            # consumption: piecewise-linear curve segment lookup
            lo, hi = 0, num_breaks
            while lo < hi:
                mid = (lo + hi) // 2
                if breakpoints[mid] <= budget:
                    lo = mid + 1
                else:
                    hi = mid
            k = lo - 1
            if k < 0:
                k = 0
            spent = values[d, k] + slopes[d, k] * (budget - anchors[k])
            # settle: bank the surplus or draw the deficit
            if h >= spent:
                accepted = (h - spent) * ce[d]
                headroom = capacity[d] - c
                if accepted > headroom:
                    accepted = headroom
                c = c + accepted
            else:
                deliverable = spent - h
                available = c * de[d]
                if deliverable > available:
                    deliverable = available
                c = c - deliverable / de[d]
                if c < 0.0:
                    c = 0.0
            budgets[t, d] = budget
            consumed[t, d] = spent
            charges[t + 1, d] = c


def _battery_scan_scalar(
    harvest, initial, capacity, target, max_draw, min_budget, ce, de, tables
) -> tuple:
    """Pure-Python scalar recurrence: bit-equal to the reference for the
    narrow fleets where Python scalars beat NumPy's per-period dispatch."""
    breakpoints, anchors, values, slopes = tables
    num_periods, num_devices = harvest.shape
    num_breaks = breakpoints.size
    bp = breakpoints.tolist()
    anchor = anchors.tolist()
    value_rows = values.tolist()
    slope_rows = slopes.tolist()
    cap = capacity.tolist()
    tgt = target.tolist()
    draw = max_draw.tolist()
    floor = min_budget.tolist()
    ce_l = ce.tolist()
    de_l = de.tolist()
    charge = initial.tolist()
    harvest_rows = harvest.tolist()
    budgets = np.empty((num_periods, num_devices))
    consumed = np.empty_like(budgets)
    charges = np.empty((num_periods + 1, num_devices))
    charges[0] = charge
    for t in range(num_periods):
        row_h = harvest_rows[t]
        row_b = budgets[t]
        row_c = consumed[t]
        row_ch = charges[t + 1]
        for d in range(num_devices):
            h = row_h[d]
            c = charge[d]
            contribution = c - tgt[d]
            if contribution < 0.0:
                contribution = 0.0
            elif contribution > draw[d]:
                contribution = draw[d]
            shortfall = floor[d] - (h + contribution)
            extra = c * de_l[d] - contribution
            if shortfall < extra:
                extra = shortfall
            if extra > 0.0:
                contribution = contribution + extra
            budget = h + contribution
            lo, hi = 0, num_breaks
            while lo < hi:
                mid = (lo + hi) // 2
                if bp[mid] <= budget:
                    lo = mid + 1
                else:
                    hi = mid
            k = lo - 1
            if k < 0:
                k = 0
            spent = value_rows[d][k] + slope_rows[d][k] * (budget - anchor[k])
            if h >= spent:
                accepted = (h - spent) * ce_l[d]
                headroom = cap[d] - c
                if accepted > headroom:
                    accepted = headroom
                c = c + accepted
            else:
                deliverable = spent - h
                available = c * de_l[d]
                if deliverable > available:
                    deliverable = available
                c = c - deliverable / de_l[d]
                if c < 0.0:
                    c = 0.0
            charge[d] = c
            row_b[d] = budget
            row_c[d] = spent
            row_ch[d] = c
    return budgets, consumed, charges


def _battery_scan_numpy(
    harvest, initial, capacity, target, max_draw, min_budget, ce, de, tables,
    dtype,
) -> tuple:
    """Fused per-period vectorized recurrence at an explicit dtype.

    The float32 variant halves the memory traffic of every step; the
    float64 variant is the wide-fleet fallback of the compiled backend.
    """
    breakpoints, anchors, values, slopes = (
        t.astype(dtype, copy=False) for t in tables
    )
    harvest = harvest.astype(dtype, copy=False)
    capacity = capacity.astype(dtype, copy=False)
    target = target.astype(dtype, copy=False)
    max_draw = max_draw.astype(dtype, copy=False)
    min_budget = min_budget.astype(dtype, copy=False)
    ce = ce.astype(dtype, copy=False)
    de = de.astype(dtype, copy=False)
    num_periods, num_devices = harvest.shape
    rows = np.arange(num_devices)
    budgets = np.empty((num_periods, num_devices), dtype=dtype)
    consumed = np.empty_like(budgets)
    charges = np.empty((num_periods + 1, num_devices), dtype=dtype)
    charge = initial.astype(dtype)
    charges[0] = charge
    zero = dtype(0.0)
    for t in range(num_periods):
        h = harvest[t]
        contribution = np.minimum(np.maximum(charge - target, zero), max_draw)
        shortfall = min_budget - (h + contribution)
        extra = np.minimum(shortfall, charge * de - contribution)
        contribution = contribution + np.maximum(zero, extra)
        budget = h + contribution
        index = breakpoints.searchsorted(budget, side="right") - 1
        np.clip(index, 0, breakpoints.size - 1, out=index)
        spent = values[rows, index] + slopes[rows, index] * (
            budget - anchors[index]
        )
        accepted = np.minimum((h - spent) * ce, capacity - charge)
        deliverable = np.minimum(spent - h, charge * de)
        charge = np.where(
            h >= spent,
            charge + accepted,
            np.maximum(zero, charge - deliverable / de),
        )
        budgets[t] = budget
        consumed[t] = spent
        charges[t + 1] = charge
    return budgets, consumed, charges


def battery_scan(
    harvest: np.ndarray,
    initial: np.ndarray,
    capacity: np.ndarray,
    target: np.ndarray,
    max_draw: np.ndarray,
    min_budget: np.ndarray,
    ce: np.ndarray,
    de: np.ndarray,
    tables: tuple,
    backend: str,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Run the closed-loop recurrence on one consumption-curve grid.

    ``tables`` is the fused ``(breakpoints, anchors, values, slopes)`` grid
    of :meth:`~repro.core.batch.StackedConsumptionCurves.fused_tables`.
    Returns float64 ``(budgets, consumed, charges)``, or ``None`` when no
    fast path beats the reference here (wide fleets without Numba).
    """
    num_devices = harvest.shape[1]
    if backend == "compiled":
        if numba_ready():
            breakpoints, anchors, values, slopes = (
                np.ascontiguousarray(t) for t in tables
            )
            budgets = np.empty(harvest.shape)
            consumed = np.empty_like(budgets)
            charges = np.empty((harvest.shape[0] + 1, num_devices))
            if _numba_call(
                _battery_scan_jit,
                np.ascontiguousarray(harvest), initial, capacity, target,
                max_draw, min_budget, ce, de,
                breakpoints, anchors, values, slopes,
                budgets, consumed, charges,
            ):
                return budgets, consumed, charges
        if num_devices <= _SCALAR_SCAN_MAX_DEVICES:
            return _battery_scan_scalar(
                harvest, initial, capacity, target, max_draw, min_budget,
                ce, de, tables,
            )
        return None
    # float32: the half-width vector step only beats the reference once the
    # fleet is wide enough to amortise the per-period dispatch; narrow
    # fleets take the (exact, faster) scalar recurrence instead.
    if num_devices <= _SCALAR_SCAN_MAX_DEVICES:
        return _battery_scan_scalar(
            harvest, initial, capacity, target, max_draw, min_budget,
            ce, de, tables,
        )
    budgets, consumed, charges = _battery_scan_numpy(
        harvest, initial, capacity, target, max_draw, min_budget, ce, de,
        tables, np.float32,
    )
    return (
        budgets.astype(np.float64),
        consumed.astype(np.float64),
        charges.astype(np.float64),
    )


# ---------------------------------------------------------------------------
# Kernel 3: the MPC window-sustainability projection
# ---------------------------------------------------------------------------
@njit(cache=False)
def _mpc_sustainable_jit(  # pragma: no cover - requires numba
    budgets, window, charge, ce, de, tol,
    breakpoints, anchors, values, slopes, ok,
):
    num_candidates, num_devices = budgets.shape
    num_windows = window.shape[0]
    num_breaks = breakpoints.shape[0]
    for ci in range(num_candidates):
        for d in range(num_devices):
            budget = budgets[ci, d]
            lo, hi = 0, num_breaks
            while lo < hi:
                mid = (lo + hi) // 2
                if breakpoints[mid] <= budget:
                    lo = mid + 1
                else:
                    hi = mid
            k = lo - 1
            if k < 0:
                k = 0
            spent = values[d, k] + slopes[d, k] * (budget - anchors[k])
            running = 0.0
            good = True
            for w in range(num_windows):
                delta = window[w, d] - spent
                deficit = -delta - (charge[d] + running) * de[d]
                if deficit > tol:
                    good = False
                    break
                if delta >= 0.0:
                    running += delta * ce[d]
                else:
                    running += delta / de[d]
            ok[ci, d] = good


def _mpc_sustainable_numpy(spent, window, charge, ce, de, tol, dtype) -> np.ndarray:
    """Fused window scan: running (C, D) buffers instead of (W, C, D)
    temporaries, at an explicit dtype."""
    spent = spent.astype(dtype, copy=False)
    window = window.astype(dtype, copy=False)
    charge = charge.astype(dtype, copy=False)
    ce = ce.astype(dtype, copy=False)
    de = de.astype(dtype, copy=False)
    tol = dtype(tol)
    running = np.zeros_like(spent)
    ok = np.ones(spent.shape, dtype=bool)
    for w in range(window.shape[0]):
        delta = window[w][None, :] - spent
        deficit = -delta - (charge + running) * de
        ok &= deficit <= tol
        running = running + np.where(delta >= 0, delta * ce, delta / de)
    return ok


#: Candidate-grid size (C * D elements) below which the fused NumPy window
#: scan loses to the reference's single broadcast over (W, C, D) -- per-step
#: dispatch overhead dominates tiny arrays.  Without Numba, smaller
#: problems return ``None`` and take the reference path.
_MPC_FUSED_MIN_ELEMENTS = 4096


def mpc_sustainable(
    budgets: np.ndarray,
    window: np.ndarray,
    charge: np.ndarray,
    ce: np.ndarray,
    de: np.ndarray,
    tol: float,
    tables: tuple,
    backend: str,
) -> Optional[np.ndarray]:
    """Sustainability mask of ``(C, D)`` candidate budgets over a window.

    Semantically identical to the reference
    :meth:`~repro.planning.horizon.MpcPlanner.sustainable` with the curve
    evaluation and the ``(W, C, D)`` projection fused into one pass.
    Returns ``None`` when no fast path would beat the reference here
    (Numba absent and the candidate grid too small to amortise the fused
    loop).
    """
    if backend == "compiled" and numba_ready():
        breakpoints, anchors, values, slopes = (
            np.ascontiguousarray(t) for t in tables
        )
        ok = np.empty(budgets.shape, dtype=np.bool_)
        if _numba_call(
            _mpc_sustainable_jit,
            np.ascontiguousarray(budgets), np.ascontiguousarray(window),
            charge, ce, de, float(tol),
            breakpoints, anchors, values, slopes, ok,
        ):
            return ok
    if budgets.size < _MPC_FUSED_MIN_ELEMENTS:
        return None
    breakpoints, anchors, values, slopes = tables
    index = breakpoints.searchsorted(budgets, side="right") - 1
    np.clip(index, 0, breakpoints.size - 1, out=index)
    rows = np.arange(budgets.shape[1])
    spent = values[rows, index] + slopes[rows, index] * (
        budgets - anchors[index]
    )
    dtype = np.float32 if backend == "float32" else np.float64
    return _mpc_sustainable_numpy(spent, window, charge, ce, de, tol, dtype)


__all__ = [
    "BACKENDS",
    "HAVE_NUMBA",
    "battery_scan",
    "build_solve_tables",
    "hull_solve",
    "mpc_sustainable",
    "numba_ready",
    "validate_backend",
]
