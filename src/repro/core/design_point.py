"""Design point abstraction used by the REAP optimiser.

A *design point* (DP) is one concrete configuration of the application with a
fixed recognition accuracy and a fixed average power consumption while active.
The runtime optimiser only ever needs the pair ``(accuracy, power)`` plus a
name; richer characterisation data (execution-time breakdown, per-activity
energy split between MCU and sensors, the HAR knob configuration that produced
the point) is carried in optional fields so that the reporting code can
regenerate Table 2 without reaching into other subsystems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Per-activity MCU execution-time breakdown in milliseconds.

    Mirrors the "MCU exec. time distribution" columns of Table 2: the time
    spent computing accelerometer features, stretch-sensor features and the
    neural-network classifier for a single activity window.
    """

    accel_features_ms: float = 0.0
    stretch_features_ms: float = 0.0
    classifier_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        """Total MCU execution time per activity window in milliseconds."""
        return self.accel_features_ms + self.stretch_features_ms + self.classifier_ms

    def scaled(self, factor: float) -> "ExecutionBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return ExecutionBreakdown(
            accel_features_ms=self.accel_features_ms * factor,
            stretch_features_ms=self.stretch_features_ms * factor,
            classifier_ms=self.classifier_ms * factor,
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-activity energy breakdown in millijoules.

    ``mcu_mj`` covers feature generation and classification on the MCU,
    ``sensor_mj`` covers the accelerometer and stretch sensor sampling energy,
    and ``communication_mj`` covers transmitting the recognised activity over
    BLE.  The paper folds communication into the MCU column of Table 2; we
    keep it separate so the Figure 4 breakdown can be reported.
    """

    mcu_mj: float = 0.0
    sensor_mj: float = 0.0
    communication_mj: float = 0.0

    @property
    def total_mj(self) -> float:
        """Total energy per activity window in millijoules."""
        return self.mcu_mj + self.sensor_mj + self.communication_mj

    def as_dict(self) -> Dict[str, float]:
        """Return the breakdown as a plain dictionary (for reports)."""
        return {
            "mcu_mj": self.mcu_mj,
            "sensor_mj": self.sensor_mj,
            "communication_mj": self.communication_mj,
            "total_mj": self.total_mj,
        }


@dataclass(frozen=True)
class DesignPoint:
    """A single energy-accuracy design point.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"DP1"``.
    accuracy:
        Recognition accuracy as a fraction in ``[0, 1]``.
    power_w:
        Average power consumption while operating at this design point, in
        watts.  This is the :math:`P_i` of the optimisation problem.
    energy_per_activity_j:
        Optional energy consumed per activity window in joules.  When omitted
        it is derived from ``power_w`` and ``activity_period_s``.
    activity_period_s:
        Duration of one activity window in seconds (1.6 s in the paper).
    description:
        Free-form description of the configuration (sensor axes, features,
        classifier structure).
    execution:
        Optional per-activity MCU execution-time breakdown.
    energy_breakdown:
        Optional per-activity energy breakdown.
    metadata:
        Arbitrary extra key/value pairs (for example the HAR knob settings
        that generated the point).
    """

    name: str
    accuracy: float
    power_w: float
    energy_per_activity_j: Optional[float] = None
    activity_period_s: float = 1.6
    description: str = ""
    execution: Optional[ExecutionBreakdown] = None
    energy_breakdown: Optional[EnergyBreakdown] = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("design point name must be non-empty")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(
                f"accuracy must be a fraction in [0, 1], got {self.accuracy!r} "
                f"for design point {self.name!r}"
            )
        if self.power_w < 0.0 or not math.isfinite(self.power_w):
            raise ValueError(
                f"power must be finite and non-negative, got {self.power_w!r} "
                f"for design point {self.name!r}"
            )
        if self.activity_period_s <= 0.0:
            raise ValueError(
                f"activity period must be positive, got {self.activity_period_s!r}"
            )
        if self.energy_per_activity_j is not None and self.energy_per_activity_j < 0.0:
            raise ValueError(
                f"energy per activity must be non-negative, got "
                f"{self.energy_per_activity_j!r} for design point {self.name!r}"
            )

    # --- derived quantities -------------------------------------------------
    @property
    def power_mw(self) -> float:
        """Average active power in milliwatts."""
        return self.power_w * 1e3

    @property
    def accuracy_percent(self) -> float:
        """Recognition accuracy in percent."""
        return self.accuracy * 100.0

    @property
    def energy_per_activity(self) -> float:
        """Energy per activity window in joules.

        Falls back to ``power_w * activity_period_s`` when no measured value
        was provided.
        """
        if self.energy_per_activity_j is not None:
            return self.energy_per_activity_j
        return self.power_w * self.activity_period_s

    @property
    def energy_per_activity_mj(self) -> float:
        """Energy per activity window in millijoules."""
        return self.energy_per_activity * 1e3

    def energy_over(self, duration_s: float) -> float:
        """Energy in joules consumed by running this DP for ``duration_s``."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        return self.power_w * duration_s

    def weighted_accuracy(self, alpha: float) -> float:
        """Return :math:`a_i^\\alpha`, the objective weight of this DP."""
        if self.accuracy == 0.0 and alpha == 0.0:
            return 1.0
        return self.accuracy ** alpha

    # --- comparisons ---------------------------------------------------------
    def dominates(self, other: "DesignPoint", tolerance: float = 0.0) -> bool:
        """Return True if this point Pareto-dominates ``other``.

        A point dominates another if it is at least as accurate and consumes
        at most as much power, and is strictly better in at least one of the
        two.  ``tolerance`` loosens the strictness check to absorb
        measurement noise.
        """
        at_least_as_good = (
            self.accuracy >= other.accuracy - tolerance
            and self.power_w <= other.power_w + tolerance
        )
        strictly_better = (
            self.accuracy > other.accuracy + tolerance
            or self.power_w < other.power_w - tolerance
        )
        return at_least_as_good and strictly_better

    def with_name(self, name: str) -> "DesignPoint":
        """Return a copy of this design point under a different name."""
        return DesignPoint(
            name=name,
            accuracy=self.accuracy,
            power_w=self.power_w,
            energy_per_activity_j=self.energy_per_activity_j,
            activity_period_s=self.activity_period_s,
            description=self.description,
            execution=self.execution,
            energy_breakdown=self.energy_breakdown,
            metadata=dict(self.metadata),
        )

    def summary(self) -> Dict[str, float]:
        """Return the Table 2 style summary row for this design point."""
        row: Dict[str, float] = {
            "accuracy_percent": self.accuracy_percent,
            "power_mw": self.power_mw,
            "energy_per_activity_mj": self.energy_per_activity_mj,
        }
        if self.execution is not None:
            row["mcu_exec_total_ms"] = self.execution.total_ms
        if self.energy_breakdown is not None:
            row["mcu_energy_mj"] = self.energy_breakdown.mcu_mj
            row["sensor_energy_mj"] = self.energy_breakdown.sensor_mj
        return row


def validate_design_points(points: Sequence[DesignPoint]) -> None:
    """Validate a collection of design points used together by the optimiser.

    Raises ``ValueError`` when the collection is empty or contains duplicate
    names (duplicates would make time allocations ambiguous).
    """
    if not points:
        raise ValueError("at least one design point is required")
    names = [dp.name for dp in points]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ValueError(f"duplicate design point names: {sorted(duplicates)}")


def sort_by_power(points: Iterable[DesignPoint], descending: bool = True) -> List[DesignPoint]:
    """Return design points sorted by active power.

    The paper numbers DP1..DP5 from highest power (and accuracy) to lowest,
    so the default is descending order.
    """
    return sorted(points, key=lambda dp: dp.power_w, reverse=descending)


def sort_by_accuracy(points: Iterable[DesignPoint], descending: bool = True) -> List[DesignPoint]:
    """Return design points sorted by recognition accuracy."""
    return sorted(points, key=lambda dp: dp.accuracy, reverse=descending)


def canonical_design_key(
    points: Sequence[DesignPoint],
) -> tuple:
    """Order-independent hashable encoding of a design-point set.

    Covers exactly the fields the allocation optimum depends on (name,
    accuracy, active power); characterisation extras like execution
    breakdowns do not change the LP and are excluded.  The per-point tuples
    are sorted, so two sets containing the same points in different orders
    encode identically -- the property the allocation-service cache relies
    on.  Floats are kept exact (no rounding), so sets that differ in any
    solver-relevant value never collide.
    """
    return tuple(
        sorted((dp.name, float(dp.accuracy), float(dp.power_w)) for dp in points)
    )


__all__ = [
    "DesignPoint",
    "EnergyBreakdown",
    "ExecutionBreakdown",
    "canonical_design_key",
    "sort_by_accuracy",
    "sort_by_power",
    "validate_design_points",
]
