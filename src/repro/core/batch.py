"""Vectorized batch allocation engine: solve whole grids of REAP LPs at once.

Why this module exists
----------------------
Every sweep-style experiment in the reproduction -- the Figure 5/6
energy-budget sweeps, the alpha ablations and the month-long solar study of
Section 5.4 -- solves the *same* tiny two-constraint LP thousands of times
while only the energy budget (and sometimes alpha) varies.  Solving those
instances one at a time through :class:`~repro.core.allocator.ReapAllocator`
rebuilds a tableau and runs a Python pivot loop per instance, which makes
fleet-scale studies (many scenarios x many periods) needlessly slow.

:class:`BatchAllocator` exploits the structure proven by
:mod:`repro.core.analytic`: the REAP LP has only two structural constraints
(the time identity and the energy budget), so every optimum lies at

1. the **all-off** vertex,
2. a **single-point** vertex (one design point active as long as the budget
   or the period allows), or
3. a **pair "blend"** vertex (two design points with both constraints
   binding -- e.g. the DP4/DP5 split at a 5 J budget).

For a fixed design-point set there are only ``1 + N + N*(N-1)/2`` candidate
vertices.  The engine enumerates them *once* as NumPy arrays and evaluates
all of them against **all** budgets and alphas via broadcasting; an argmax
then selects the winner of every grid cell.  No Python-level loop touches
the (budget, alpha) grid, so a 200 x 5 sweep costs a handful of array
operations instead of a thousand simplex solves.

Quickstart
----------
Solve a whole Figure 5/6-style grid in one call::

    import numpy as np
    from repro.core.batch import BatchAllocator
    from repro.data.table2 import table2_design_points

    engine = BatchAllocator(table2_design_points())
    budgets = np.linspace(0.2, 10.4, 200)          # joules per hour
    grid = engine.solve_grid(budgets, alphas=(0.5, 1.0, 2.0))

    grid.objective.shape          # (3, 200): one row per alpha
    grid.expected_accuracy[1]     # accuracy curve at alpha = 1
    grid.active_time_s[2]         # active-time curve at alpha = 2
    allocation = grid.allocation(1, 99)   # full TimeAllocation for one cell

Single-alpha sweeps use :meth:`BatchAllocator.solve_budgets`, and the static
design-point baselines of Figure 5 are closed-form and exposed through
:meth:`BatchAllocator.static_grid`::

    series = engine.solve_budgets(budgets, alpha=1.0)   # A = 1 grid
    dp1 = engine.static_grid("DP1", budgets)            # StaticSeries arrays

Raw-array API (the fleet simulation path)
-----------------------------------------
The campaign simulator consumes allocations as plain arrays, one row per
activity period, and must not pay for per-cell ``TimeAllocation`` objects.
:meth:`BatchAllocator.solve_arrays` (and its static counterpart
:meth:`BatchAllocator.static_arrays`) return a :class:`BatchArrays` bundle:
per-DP time matrices, objectives, consumed energy and the feasibility mask
for one alpha over a whole budget vector.

Closed-loop campaigns additionally need the *consumed energy as a function
of the granted budget*: the battery recurrence of
:mod:`repro.energy.fleet` cannot solve one LP per period because each
period's budget depends on the previous period's consumption.  Because every
optimal vertex either binds the energy budget exactly (consumption equals
the budget) or saturates a design point for the whole period (consumption is
constant), the consumed energy is a **piecewise-linear** function of the
budget whose kinks all lie at ``{0, E_off, P_i * T_P}``.
:meth:`BatchAllocator.consumption_curve` captures that function as a
:class:`ConsumptionCurve` that can be evaluated for thousands of budgets
without touching the LP again.

Equivalence and scope
---------------------
The engine reproduces the scalar solvers' optima exactly: it enumerates the
same candidate vertices, applies the same feasibility tolerances and visits
candidates in the same order as :func:`repro.core.analytic.solve_analytic`
(all-off first, then single points, then pairs), so objectives agree with
:class:`~repro.core.allocator.ReapAllocator` to floating-point round-off.
(Under an *exact* objective tie between two vertices -- e.g. two design
points with identical accuracy -- either solver may return either vertex;
the optimal value is still identical.)
The property-based test-suite asserts this on randomized grids for all three
scalar formulations.  The scalar simplex remains the reference implementation
(and the only path for the two-phase ``"full"`` formulation); the batch
engine is the fast path for grid-shaped workloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.design_point import (
    DesignPoint,
    canonical_design_key,
    validate_design_points,
)
from repro.core.objective import validate_alpha
from repro.core.problem import ReapProblem
from repro.core.schedule import TimeAllocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W

#: Tolerance below which two design-point powers are considered identical
#: (the pair system is singular and the single-point vertices cover it).
_POWER_GAP_TOLERANCE = 1e-15

#: Feasibility slack on vertex coordinates, matching the analytic solver.
_VERTEX_TOLERANCE = 1e-9

#: Objective-scale slack of the deterministic argmax tie-break: candidates
#: within ``_TIE_TOLERANCE_OBJECTIVE * period_s`` (on the value scale) of the
#: maximum are considered tied and the *first* candidate in canonical order
#: (off, singles, pairs) wins.  This pins the chosen vertex at exact
#: consumption-curve kinks -- where round-off used to flip the argmax
#: between a saturated single and its zero-weight pair blends -- identically
#: across backends, while perturbing reported objectives by at most 1e-10.
_TIE_TOLERANCE_OBJECTIVE = 1e-10

#: Process-wide engine registry behind :meth:`BatchAllocator.shared`,
#: keyed by :meth:`BatchAllocator.engine_key`.  Bounded LRU so pathological
#: parameter churn (e.g. fuzzing over random design sets) cannot pin
#: unbounded solve tables in memory.
_SHARED_ENGINES: "OrderedDict[tuple, BatchAllocator]" = OrderedDict()
_SHARED_ENGINES_LOCK = threading.Lock()
_MAX_SHARED_ENGINES = 32


@dataclass(frozen=True)
class StaticSeries:
    """Closed-form series of one static design-point policy over a budget grid.

    The static baseline of Section 5 runs a single design point until the
    budget is exhausted; its active time, accuracy and objective are simple
    closed-form functions of the budget and need no LP at all.
    """

    name: str
    budgets_j: np.ndarray
    active_time_s: np.ndarray
    expected_accuracy: np.ndarray
    objective: np.ndarray


@dataclass(frozen=True)
class BatchArrays:
    """Raw-array solution of one alpha over a budget vector.

    This is the fleet-simulation view of the engine: all per-period
    quantities as flat arrays indexed by budget (times have a trailing
    design-point axis), with no :class:`~repro.core.schedule.TimeAllocation`
    objects materialised.  Use :meth:`allocation` to build the odd cell that
    needs one.
    """

    design_points: Tuple[DesignPoint, ...]
    budgets_j: np.ndarray          #: (B,) energy budgets
    alpha: float                   #: trade-off parameter the solve used
    times_s: np.ndarray            #: (B, N) active seconds per design point
    feasible: np.ndarray           #: (B,) False below the off-state floor
    objective: np.ndarray          #: (B,) objective values J*
    expected_accuracy: np.ndarray  #: (B,) alpha=1 objective of the optimum
    active_time_s: np.ndarray      #: (B,) total active seconds
    energy_j: np.ndarray           #: (B,) energy consumed by the optimum
    period_s: float
    off_power_w: float

    def __len__(self) -> int:
        return int(self.budgets_j.size)

    @property
    def num_budgets(self) -> int:
        """Number of solved budgets B."""
        return int(self.budgets_j.size)

    @property
    def off_time_s(self) -> np.ndarray:
        """(B,) seconds spent in the off state."""
        return np.maximum(0.0, self.period_s - self.active_time_s)

    @property
    def device_consumption_j(self) -> np.ndarray:
        """(B,) energy the *device* actually consumes per period.

        Equals the allocation's energy, except below the off-state floor
        where the device browns out and can only consume what was granted
        (mirroring :meth:`repro.simulation.device.DeviceSimulator.run_period`).
        """
        return np.where(
            self.feasible, self.energy_j, np.minimum(self.energy_j, self.budgets_j)
        )

    def allocation(self, index: int) -> TimeAllocation:
        """Materialise the :class:`TimeAllocation` of one budget row."""
        times = self.times_s[index]
        active = float(times.sum())
        return TimeAllocation(
            design_points=self.design_points,
            times_s=tuple(float(t) for t in times),
            off_time_s=max(0.0, self.period_s - active),
            period_s=self.period_s,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
            budget_j=float(self.budgets_j[index]),
            budget_feasible=bool(self.feasible[index]),
        )


class ConsumptionCurveError(ValueError):
    """The consumption function is not piecewise-linear over the breakpoints.

    Raised when a design-point set violates the assumptions behind
    :class:`ConsumptionCurve` (for example a design point cheaper than the
    off state, whose constant-value candidate can overtake budget-binding
    candidates at arbitrary interior budgets).  Callers fall back to the
    scalar per-period path.
    """


@dataclass(frozen=True)
class ConsumptionCurve:
    """Piecewise-linear device consumption as a function of the budget.

    Segment ``k`` covers ``[breakpoints_j[k], breakpoints_j[k+1])`` (the last
    one extends to infinity) and evaluates to ``values_j[k] + slopes[k] *
    (budget - anchors_j[k])``; every slope is 0 (a saturated design point) or
    1 (the energy constraint binds).  Each segment is anchored at an
    *interior* probe of the exact engine rather than at its left breakpoint:
    floating-point round-off can flip the argmax tie-break exactly at a kink
    budget, and anchoring inside the segment keeps the curve equal to the
    engine everywhere except on that measure-zero set of exact-kink budgets.
    """

    breakpoints_j: np.ndarray  #: (M,) sorted segment starts, beginning at 0
    anchors_j: np.ndarray      #: (M,) interior anchor budget of each segment
    values_j: np.ndarray       #: (M,) consumption at each anchor
    slopes: np.ndarray         #: (M,) d(consumption)/d(budget) per segment

    #: Tolerance on the slope/linearity validation probes.
    _VALIDATION_TOLERANCE = 1e-9

    @classmethod
    def from_probe(
        cls,
        breakpoints_j: Sequence[float],
        consumption: "Callable[[np.ndarray], np.ndarray]",
    ) -> "ConsumptionCurve":
        """Build a curve by probing an exact consumption evaluator.

        ``consumption`` maps a budget vector to per-budget consumed energy
        (e.g. a :meth:`BatchAllocator.device_consumption` closure).  Every
        segment is validated against three interior probes: it must be
        linear with slope 0 or 1, otherwise :class:`ConsumptionCurveError`
        is raised and the caller should use the evaluator directly.
        """
        points = np.unique(np.asarray(breakpoints_j, dtype=float))
        if points.size == 0 or points[0] < 0:
            raise ConsumptionCurveError("breakpoints must be non-negative")
        if points[0] != 0.0:
            points = np.concatenate([[0.0], points])

        # Three probes per segment (the last segment is open-ended).
        widths = np.append(np.diff(points), max(1.0, points[-1]))
        probe_a = points + widths * 0.25
        probe_mid = points + widths * 0.5
        probe_b = points + widths * 0.75
        consumed_a = np.asarray(consumption(probe_a), dtype=float)
        consumed_mid = np.asarray(consumption(probe_mid), dtype=float)
        consumed_b = np.asarray(consumption(probe_b), dtype=float)
        slopes = (consumed_b - consumed_a) / (probe_b - probe_a)

        scale = max(1.0, float(np.max(points)))
        tolerance = cls._VALIDATION_TOLERANCE * scale
        near_zero = np.abs(slopes) <= tolerance
        near_one = np.abs(slopes - 1.0) <= tolerance
        if not np.all(near_zero | near_one):
            raise ConsumptionCurveError(
                "consumption is not piecewise-linear with slopes in {0, 1}"
            )
        slopes = np.where(near_one, 1.0, 0.0)
        # The line through the outer probes must reproduce the middle probe
        # (catches jumps or curvature strictly inside a segment).
        predicted_mid = consumed_a + slopes * (probe_mid - probe_a)
        if np.any(np.abs(predicted_mid - consumed_mid) > tolerance):
            raise ConsumptionCurveError(
                "consumption has a discontinuity inside a segment"
            )
        return cls(
            breakpoints_j=points,
            anchors_j=probe_a,
            values_j=consumed_a,
            slopes=slopes,
        )

    def __call__(self, budgets_j: Sequence[float]) -> np.ndarray:
        """Evaluate the curve for a vector of budgets."""
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        index = np.searchsorted(self.breakpoints_j, budgets, side="right") - 1
        index = np.minimum(np.maximum(index, 0), self.breakpoints_j.size - 1)
        return self.values_j[index] + self.slopes[index] * (
            budgets - self.anchors_j[index]
        )


class StackedConsumptionCurves:
    """Evaluate one :class:`ConsumptionCurve` per device in a single pass.

    Curves sharing one breakpoint/anchor grid (curves built by one
    :class:`BatchAllocator` always do) evaluate as two gathers and a fused
    multiply-add per step of the battery scan.  Heterogeneous fleets --
    policies over different design-point sets, periods or off powers --
    are grouped by grid and evaluated one gather pass per distinct grid.
    """

    def __init__(self, curves: Sequence[ConsumptionCurve]) -> None:
        if not curves:
            raise ValueError("need at least one consumption curve")
        self._num_devices = len(curves)
        groups: dict = {}
        for device, curve in enumerate(curves):
            key = (curve.breakpoints_j.tobytes(), curve.anchors_j.tobytes())
            groups.setdefault(key, []).append((device, curve))
        self._groups = []
        for members in groups.values():
            devices = np.array([device for device, _ in members])
            group_curves = [curve for _, curve in members]
            self._groups.append(
                (
                    devices,
                    group_curves[0].breakpoints_j,
                    group_curves[0].anchors_j,
                    np.stack([c.values_j for c in group_curves]),  # (G, M)
                    np.stack([c.slopes for c in group_curves]),    # (G, M)
                    np.arange(len(group_curves)),
                )
            )

    @property
    def num_devices(self) -> int:
        """Number of stacked device curves D."""
        return self._num_devices

    def fused_tables(self) -> Optional[Tuple[np.ndarray, ...]]:
        """The single shared curve grid, or ``None`` for mixed fleets.

        When every device shares one breakpoint/anchor grid (fleets built
        by one :class:`BatchAllocator` always do), returns ``(breakpoints,
        anchors, values, slopes)`` with ``values``/``slopes`` shaped
        ``(D, M)`` in device order -- the layout the accelerated kernels of
        :mod:`repro.core.kernels` consume.  Heterogeneous fleets return
        ``None`` and take the grouped reference path.
        """
        if len(self._groups) != 1:
            return None
        _, breakpoints, anchors, values, slopes, _ = self._groups[0]
        return breakpoints, anchors, values, slopes

    def __call__(self, budgets_j: np.ndarray) -> np.ndarray:
        """Per-device consumption of granted budgets: (..., D) in and out.

        The trailing axis is the device axis; leading axes (e.g. the MPC
        planner's candidate-budget axis) broadcast through.
        """
        if len(self._groups) == 1:
            devices, breakpoints, anchors, values, slopes, rows = self._groups[0]
            index = breakpoints.searchsorted(budgets_j, side="right") - 1
            index = np.minimum(np.maximum(index, 0), breakpoints.size - 1)
            return values[rows, index] + slopes[rows, index] * (
                budgets_j - anchors[index]
            )
        consumed = np.empty(np.shape(budgets_j))
        for devices, breakpoints, anchors, values, slopes, rows in self._groups:
            budgets = budgets_j[..., devices]
            index = breakpoints.searchsorted(budgets, side="right") - 1
            index = np.minimum(np.maximum(index, 0), breakpoints.size - 1)
            consumed[..., devices] = values[rows, index] + slopes[rows, index] * (
                budgets - anchors[index]
            )
        return consumed


@dataclass(frozen=True)
class BatchGridResult:
    """Solution of a (budget x alpha) grid of REAP problems.

    All arrays are indexed ``[alpha_index, budget_index]`` (times have a
    trailing design-point axis).  The heavy per-cell
    :class:`~repro.core.schedule.TimeAllocation` objects are *not* built
    eagerly; use :meth:`allocation` / :meth:`allocations` to materialise the
    cells you actually need.
    """

    design_points: Tuple[DesignPoint, ...]
    budgets_j: np.ndarray          #: (B,) swept energy budgets
    alphas: np.ndarray             #: (A,) swept trade-off parameters
    times_s: np.ndarray            #: (A, B, N) optimal active times
    objective: np.ndarray          #: (A, B) optimal objective values J*
    expected_accuracy: np.ndarray  #: (A, B) alpha=1 objective of the optimum
    active_time_s: np.ndarray      #: (A, B) total active seconds
    energy_j: np.ndarray           #: (A, B) energy consumed by the optimum
    budget_feasible: np.ndarray    #: (B,) False below the off-state floor
    period_s: float
    off_power_w: float

    @property
    def num_alphas(self) -> int:
        """Number of swept alpha values A."""
        return int(self.alphas.size)

    @property
    def num_budgets(self) -> int:
        """Number of swept budgets B."""
        return int(self.budgets_j.size)

    @property
    def off_time_s(self) -> np.ndarray:
        """(A, B) seconds spent in the off state."""
        return self.period_s - self.active_time_s

    def allocation(self, alpha_index: int, budget_index: int) -> TimeAllocation:
        """Materialise the :class:`TimeAllocation` of one grid cell."""
        times = self.times_s[alpha_index, budget_index]
        active = float(times.sum())
        return TimeAllocation(
            design_points=self.design_points,
            times_s=tuple(float(t) for t in times),
            off_time_s=max(0.0, self.period_s - active),
            period_s=self.period_s,
            alpha=float(self.alphas[alpha_index]),
            off_power_w=self.off_power_w,
            budget_j=float(self.budgets_j[budget_index]),
            budget_feasible=bool(self.budget_feasible[budget_index]),
        )

    def allocations(self, alpha_index: int = 0) -> List[TimeAllocation]:
        """Materialise the allocations of one alpha row, one per budget."""
        return [
            self.allocation(alpha_index, budget_index)
            for budget_index in range(self.num_budgets)
        ]


class BatchAllocator:
    """Solves grids of REAP problems over a fixed design-point set.

    Parameters
    ----------
    design_points:
        The design points available to the runtime (typically the five
        Pareto-optimal DPs of Table 2).  Fixed for the engine's lifetime so
        the candidate-vertex structure can be precomputed once.
    period_s:
        Activity period :math:`T_P` in seconds.
    off_power_w:
        Power consumed in the off state.
    backend:
        Numeric backend for the raw-array solves: ``"numpy"`` (the float64
        reference), ``"compiled"`` (Numba-jitted value-hull kernel with a
        graceful NumPy fallback, 1e-9 agreement) or ``"float32"``
        (single-precision SIMD-friendly hull kernel, 1e-4 agreement).  See
        :mod:`repro.core.kernels`.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        backend: str = "numpy",
    ) -> None:
        validate_design_points(design_points)
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        if off_power_w < 0:
            raise ValueError(f"off-state power must be non-negative, got {off_power_w}")
        self.design_points = tuple(design_points)
        self.period_s = float(period_s)
        self.off_power_w = float(off_power_w)
        self.backend = kernels.validate_backend(backend)
        # Value-hull tables of the accelerated solve path, built lazily
        # once per alpha (see kernels.build_solve_tables).
        self._solve_tables: dict = {}
        # Consumption curves probe dozens of reference solves each; cache
        # them per alpha (and per static policy) like the solve tables.
        # Benign GIL-level race: a duplicate build, never a wrong result.
        self._curve_cache: dict = {}
        self._static_curve_cache: dict = {}

        self._powers = np.array([dp.power_w for dp in self.design_points])
        self._accuracies = np.array([dp.accuracy for dp in self.design_points])
        self._marginal_powers = self._powers - self.off_power_w

        # Pair vertices: keep only pairs whose power draws differ (identical
        # powers make the 2x2 system singular; the single-point vertices
        # already cover those optima).
        n = len(self.design_points)
        pair_i, pair_j = np.triu_indices(n, k=1)
        gaps = self._powers[pair_i] - self._powers[pair_j]
        usable = np.abs(gaps) >= _POWER_GAP_TOLERANCE
        self._pair_i = pair_i[usable]
        self._pair_j = pair_j[usable]
        self._pair_gaps = gaps[usable]

    @classmethod
    def from_problem(cls, problem: ReapProblem) -> "BatchAllocator":
        """Build an engine matching a scalar problem's fixed parameters."""
        return cls(
            problem.design_points,
            period_s=problem.period_s,
            off_power_w=problem.off_power_w,
        )

    @classmethod
    def shared(
        cls,
        design_points: Sequence[DesignPoint],
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        backend: str = "numpy",
    ) -> "BatchAllocator":
        """Process-wide engine for these parameters, built at most once.

        Engines are immutable after construction and their lazily-built
        caches (solve tables, consumption curves) are per-(alpha, policy),
        so every policy with the same :meth:`engine_key` can share one
        instance: a fleet sweeping ten alphas over one design-point set
        builds one vertex structure and one curve per alpha instead of
        ten of each -- and a warm campaign worker reuses them across
        cells, tasks and campaigns.  Thread-safe; bounded LRU.
        """
        backend = kernels.validate_backend(backend)
        key = (
            canonical_design_key(tuple(design_points)),
            float(period_s),
            float(off_power_w),
        )
        if backend != "numpy":
            key += (backend,)
        with _SHARED_ENGINES_LOCK:
            engine = _SHARED_ENGINES.get(key)
            if engine is not None:
                _SHARED_ENGINES.move_to_end(key)
                return engine
        engine = cls(
            design_points,
            period_s=period_s,
            off_power_w=off_power_w,
            backend=backend,
        )
        with _SHARED_ENGINES_LOCK:
            existing = _SHARED_ENGINES.get(key)
            if existing is not None:  # lost a build race; keep the warm one
                _SHARED_ENGINES.move_to_end(key)
                return existing
            _SHARED_ENGINES[key] = engine
            while len(_SHARED_ENGINES) > _MAX_SHARED_ENGINES:
                _SHARED_ENGINES.popitem(last=False)
        return engine

    # --- convenience ----------------------------------------------------------
    def engine_key(self) -> tuple:
        """Canonical hashable encoding of this engine's fixed parameters.

        Two engines with equal keys solve identical problems for any
        (budget, alpha): the same design-point *set* (order-independent),
        period and off power.  The allocation service groups concurrent
        requests by this key so each group dispatches as one batched solve,
        and :meth:`ReapProblem.canonical_key` extends it with the per-request
        budget and alpha to form the result-cache key.

        A non-default ``backend`` is appended as a trailing element so
        cached results never cross numeric backends; the default
        ``"numpy"`` keeps the historical three-element key (and therefore
        its equality with :meth:`ReapProblem.canonical_key` prefixes).
        """
        key = (
            canonical_design_key(self.design_points),
            self.period_s,
            self.off_power_w,
        )
        if self.backend != "numpy":
            key += (self.backend,)
        return key

    @property
    def num_design_points(self) -> int:
        """Number of design points N."""
        return len(self.design_points)

    @property
    def num_candidate_vertices(self) -> int:
        """Candidate vertices evaluated per grid cell (off + singles + pairs)."""
        return 1 + self.num_design_points + self._pair_i.size

    @property
    def min_required_energy_j(self) -> float:
        """Energy needed to stay off for the whole period."""
        return self.off_power_w * self.period_s

    @property
    def max_useful_energy_j(self) -> float:
        """Budget past which every additional joule is wasted."""
        return float(self._powers.max()) * self.period_s

    # --- candidate enumeration -------------------------------------------------
    def _candidate_times(
        self, budgets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate all candidate vertices against all budgets at once.

        Returns ``(t_single, t_pair_i, t_pair_j, pair_feasible)`` where
        ``t_single`` is ``(B, N)`` and the pair arrays are ``(B, K)``.
        """
        surplus = budgets - self.min_required_energy_j          # (B,)

        # Single-point vertices: run DP i as long as the budget (or the
        # period) allows; non-positive marginal power means the DP is cheaper
        # than staying off, so it runs the whole period.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_single = np.where(
                self._marginal_powers[None, :] > 0,
                surplus[:, None] / self._marginal_powers[None, :],
                self.period_s,
            )
        t_single = np.clip(t_single, 0.0, self.period_s)        # (B, N)

        # Pair vertices: both the time identity and the energy budget bind.
        #   t_i + t_j = TP,  P_i t_i + P_j t_j = Eb
        t_pair_i = (
            budgets[:, None] - self._powers[self._pair_j][None, :] * self.period_s
        ) / self._pair_gaps[None, :]                            # (B, K)
        t_pair_j = self.period_s - t_pair_i
        pair_feasible = (t_pair_i >= -_VERTEX_TOLERANCE) & (
            t_pair_j >= -_VERTEX_TOLERANCE
        )
        t_pair_i = np.maximum(t_pair_i, 0.0)
        t_pair_j = np.maximum(t_pair_j, 0.0)

        # Mirror the analytic solver's post-clamp feasibility tolerances: the
        # clamped vertex must still respect the period and the budget.
        total = t_pair_i + t_pair_j
        energy = (
            self._powers[self._pair_i][None, :] * t_pair_i
            + self._powers[self._pair_j][None, :] * t_pair_j
            + self.off_power_w * (self.period_s - total)
        )
        pair_feasible &= total <= self.period_s * (1 + _VERTEX_TOLERANCE)
        pair_feasible &= energy <= budgets[:, None] * (1 + _VERTEX_TOLERANCE) + 1e-12
        return t_single, t_pair_i, t_pair_j, pair_feasible

    # --- winner selection ------------------------------------------------------
    def _winner_times(
        self, budgets: np.ndarray, weights: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Argmax-select the winning vertex of every (weight-row, budget) cell.

        ``weights`` holds one row of objective weights per alpha, shape
        ``(A, N)``.  Returns the optimal times ``(A, B, N)`` and the budget
        feasibility mask ``(B,)``.
        """
        n = self.num_design_points
        num_budgets = budgets.size
        num_alphas = weights.shape[0]
        feasible = budgets >= self.min_required_energy_j - 1e-12   # (B,)

        t_single, t_pair_i, t_pair_j, pair_feasible = self._candidate_times(budgets)

        # Candidate values, broadcast over (A, B, candidate): the all-off
        # vertex scores zero, singles score w_i * t_i, pairs score the blend.
        value_off = np.zeros((num_alphas, num_budgets, 1))
        value_single = weights[:, None, :] * t_single[None, :, :]
        value_pair = (
            weights[:, None, self._pair_i] * t_pair_i[None, :, :]
            + weights[:, None, self._pair_j] * t_pair_j[None, :, :]
        )
        value_pair = np.where(pair_feasible[None, :, :], value_pair, -np.inf)

        # Candidate order matches solve_analytic (off, singles, pairs) so
        # argmax breaks ties identically and the winning vertices coincide.
        # The tie is *snapped*: any candidate within the tolerance of the
        # maximum counts as tied and the earliest one wins, so round-off at
        # an exact consumption-curve kink (where a saturated single equals
        # its zero-weight pair blends) cannot flip the chosen vertex
        # between runs or backends.
        values = np.concatenate([value_off, value_single, value_pair], axis=2)
        tie_tol = _TIE_TOLERANCE_OBJECTIVE * self.period_s
        best = values.max(axis=2, keepdims=True)
        winners = np.argmax(values >= best - tie_tol, axis=2)      # (A, B)
        winners[:, ~feasible] = 0

        times = np.zeros((num_alphas, num_budgets, n))
        single_won = (winners >= 1) & (winners <= n)
        if np.any(single_won):
            alpha_idx, budget_idx = np.nonzero(single_won)
            point_idx = winners[alpha_idx, budget_idx] - 1
            times[alpha_idx, budget_idx, point_idx] = t_single[budget_idx, point_idx]
        pair_won = winners > n
        if np.any(pair_won):
            alpha_idx, budget_idx = np.nonzero(pair_won)
            k = winners[alpha_idx, budget_idx] - 1 - n
            times[alpha_idx, budget_idx, self._pair_i[k]] = t_pair_i[budget_idx, k]
            times[alpha_idx, budget_idx, self._pair_j[k]] = t_pair_j[budget_idx, k]
        return times, feasible

    @staticmethod
    def _validate_budgets(budgets_j: Sequence[float]) -> np.ndarray:
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        if budgets.size == 0:
            raise ValueError("budget grid is empty")
        if np.any(budgets < 0):
            raise ValueError("energy budgets must be non-negative")
        return budgets

    # --- grid solves -----------------------------------------------------------
    def solve_grid(
        self,
        budgets_j: Sequence[float],
        alphas: Sequence[float] = (1.0,),
    ) -> BatchGridResult:
        """Solve every (alpha, budget) cell of the grid in one vectorized pass.

        Parameters
        ----------
        budgets_j:
            Energy budgets to sweep (any non-negative values; budgets below
            the off-state floor yield the all-off allocation flagged
            infeasible, exactly like the scalar allocator with
            ``clip_infeasible=True``).
        alphas:
            Trade-off parameters to sweep.
        """
        budgets = self._validate_budgets(budgets_j)
        alpha_grid = np.array([validate_alpha(a) for a in np.atleast_1d(alphas)])
        if alpha_grid.size == 0:
            raise ValueError("alpha grid is empty")

        # Objective weights a_i^alpha for every alpha: (A, N).  numpy already
        # yields 0**0 == 1, matching DesignPoint.weighted_accuracy.
        weights = self._accuracies[None, :] ** alpha_grid[:, None]
        times, feasible = self._winner_times(budgets, weights)

        active = times.sum(axis=2)                                 # (A, B)
        objective = np.einsum("abn,an->ab", times, weights) / self.period_s
        accuracy = (times @ self._accuracies) / self.period_s
        energy = times @ self._powers + self.off_power_w * (self.period_s - active)
        return BatchGridResult(
            design_points=self.design_points,
            budgets_j=budgets,
            alphas=alpha_grid,
            times_s=times,
            objective=objective,
            expected_accuracy=accuracy,
            active_time_s=active,
            energy_j=energy,
            budget_feasible=feasible,
            period_s=self.period_s,
            off_power_w=self.off_power_w,
        )

    def solve_budgets(
        self, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> BatchGridResult:
        """Solve a single-alpha budget sweep (an ``A = 1`` grid)."""
        return self.solve_grid(budgets_j, alphas=(alpha,))

    def solve_allocations(
        self, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> List[TimeAllocation]:
        """Solve a budget sweep and materialise one allocation per budget.

        This is the drop-in replacement for calling
        ``ReapAllocator().solve(problem.with_budget(b))`` in a loop.
        """
        return self.solve_budgets(budgets_j, alpha=alpha).allocations(0)

    # --- raw-array solves (fleet simulation path) -------------------------------
    def solve_arrays(self, budgets_j: Sequence[float], alpha: float = 1.0) -> BatchArrays:
        """Solve one alpha over a budget vector, returning raw arrays only.

        This is the fleet-campaign fast path: per-DP time matrices, the
        objective/accuracy/energy series and the feasibility mask, with no
        per-cell :class:`TimeAllocation` objects.

        Under a non-default ``backend`` the solve runs through the
        accelerated value-hull kernel of :mod:`repro.core.kernels`
        (falling back to this reference enumeration for degenerate
        design-point sets where the hull does not exist).
        """
        budgets = self._validate_budgets(budgets_j)
        alpha = validate_alpha(alpha)
        if self.backend != "numpy":
            fast = self._solve_arrays_fast(budgets, alpha)
            if fast is not None:
                return fast
        return self._solve_arrays_reference(budgets, alpha)

    def _solve_arrays_reference(
        self, budgets: np.ndarray, alpha: float
    ) -> BatchArrays:
        """The float64 candidate-enumeration solve, backend-independent."""
        weights = self._accuracies[None, :] ** alpha               # (1, N)
        times, feasible = self._winner_times(budgets, weights)
        times = times[0]                                           # (B, N)
        active = times.sum(axis=1)
        return BatchArrays(
            design_points=self.design_points,
            budgets_j=budgets,
            alpha=alpha,
            times_s=times,
            feasible=feasible,
            objective=(times @ weights[0]) / self.period_s,
            expected_accuracy=(times @ self._accuracies) / self.period_s,
            active_time_s=active,
            energy_j=times @ self._powers
            + self.off_power_w * (self.period_s - active),
            period_s=self.period_s,
            off_power_w=self.off_power_w,
        )

    def _solve_arrays_fast(
        self, budgets: np.ndarray, alpha: float
    ) -> Optional[BatchArrays]:
        """Accelerated solve via the value hull (``None`` -> no fast path)."""
        dtype = np.float32 if self.backend == "float32" else np.float64
        cached = self._solve_tables.get(alpha)
        if cached is None:
            cached = kernels.build_solve_tables(
                self._powers,
                self._accuracies,
                alpha,
                self.period_s,
                self.off_power_w,
                dtype=dtype,
            )
            self._solve_tables[alpha] = (cached,)
        else:
            (cached,) = cached
        if cached is None:
            return None
        times, feasible, objective, accuracy, active, energy = (
            kernels.hull_solve(
                budgets, cached, self.period_s, self.num_design_points,
                self.backend,
            )
        )
        return BatchArrays(
            design_points=self.design_points,
            budgets_j=budgets,
            alpha=alpha,
            times_s=times,
            feasible=feasible,
            objective=objective,
            expected_accuracy=accuracy,
            active_time_s=active,
            energy_j=energy,
            period_s=self.period_s,
            off_power_w=self.off_power_w,
        )

    def static_arrays(
        self, name: str, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> BatchArrays:
        """Raw arrays of the static policy running ``name`` over the budgets.

        Array counterpart of :meth:`static_allocations` (below the off-state
        floor the row is the all-off fallback flagged infeasible).
        """
        index = self._index_of(name)
        budgets = self._validate_budgets(budgets_j)
        alpha = validate_alpha(alpha)
        active = self.static_active_times(name, budgets)           # (B,)
        feasible = budgets >= self.min_required_energy_j - 1e-12
        times = np.zeros((budgets.size, self.num_design_points))
        times[:, index] = active
        weight = self.design_points[index].weighted_accuracy(alpha)
        return BatchArrays(
            design_points=self.design_points,
            budgets_j=budgets,
            alpha=alpha,
            times_s=times,
            feasible=feasible,
            objective=weight * active / self.period_s,
            expected_accuracy=self._accuracies[index] * active / self.period_s,
            active_time_s=active,
            energy_j=self._powers[index] * active
            + self.off_power_w * (self.period_s - active),
            period_s=self.period_s,
            off_power_w=self.off_power_w,
        )

    # --- consumption as a function of the budget --------------------------------
    def _curve_breakpoints(self) -> np.ndarray:
        """Budgets where the consumption function can kink.

        The winning vertex changes only where a design point saturates
        (``P_i * T_P``) or the budget crosses the off-state floor; between
        those, consumption is linear in the budget.
        """
        return np.unique(
            np.concatenate(
                [[0.0, self.min_required_energy_j], self._powers * self.period_s]
            )
        )

    def device_consumption(
        self, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> np.ndarray:
        """Energy the device consumes per period at the REAP optimum."""
        return self.solve_arrays(budgets_j, alpha=alpha).device_consumption_j

    def consumption_curve(self, alpha: float = 1.0) -> ConsumptionCurve:
        """Piecewise-linear consumption-of-budget for the REAP optimum.

        Raises :class:`ConsumptionCurveError` when the design-point set
        violates the piecewise-linear structure (a design point no more
        power-hungry than the off state, whose constant-value candidate can
        overtake budget-binding candidates at arbitrary interior budgets).
        """
        if np.any(self._marginal_powers <= 0):
            raise ConsumptionCurveError(
                "a design point draws no more than the off state; consumption "
                "is not piecewise-linear over the saturation breakpoints"
            )
        # Probe the float64 reference solve regardless of the backend: the
        # curve encodes the exact LP structure (its validation demands 1e-9
        # linearity, which float32 round-off cannot meet), and the fast
        # backends consume it through the fused tables instead.  Curves are
        # immutable, so one probe per alpha serves the engine's lifetime.
        probe_alpha = validate_alpha(alpha)
        cached = self._curve_cache.get(probe_alpha)
        if cached is None:
            cached = ConsumptionCurve.from_probe(
                self._curve_breakpoints(),
                lambda budgets: self._solve_arrays_reference(
                    self._validate_budgets(budgets), probe_alpha
                ).device_consumption_j,
            )
            self._curve_cache[probe_alpha] = cached
        return cached

    def static_consumption_curve(
        self, name: str, alpha: float = 1.0
    ) -> ConsumptionCurve:
        """Piecewise-linear consumption-of-budget for one static policy."""
        key = (name, validate_alpha(alpha))
        cached = self._static_curve_cache.get(key)
        if cached is None:
            cached = ConsumptionCurve.from_probe(
                self._curve_breakpoints(),
                lambda budgets: self.static_arrays(
                    name, budgets, alpha=alpha
                ).device_consumption_j,
            )
            self._static_curve_cache[key] = cached
        return cached

    # --- static (single design point) baselines --------------------------------
    def static_active_times(self, name: str, budgets_j: Sequence[float]) -> np.ndarray:
        """Closed-form active times of the static policy running ``name``."""
        index = self._index_of(name)
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        surplus = budgets - self.min_required_energy_j
        marginal = self._marginal_powers[index]
        if marginal <= 0:
            active = np.full(budgets.shape, self.period_s)
        else:
            active = np.clip(surplus / marginal, 0.0, self.period_s)
        active[budgets < self.min_required_energy_j - 1e-12] = 0.0
        return active

    def static_grid(
        self, name: str, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> StaticSeries:
        """Closed-form series of one static design point over a budget grid."""
        index = self._index_of(name)
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        active = self.static_active_times(name, budgets)
        accuracy = self._accuracies[index]
        weight = self.design_points[index].weighted_accuracy(validate_alpha(alpha))
        return StaticSeries(
            name=name,
            budgets_j=budgets,
            active_time_s=active,
            expected_accuracy=accuracy * active / self.period_s,
            objective=weight * active / self.period_s,
        )

    def static_allocations(
        self, name: str, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> List[TimeAllocation]:
        """Materialise the static policy's allocations, one per budget."""
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        active = self.static_active_times(name, budgets)
        feasible = budgets >= self.min_required_energy_j - 1e-12
        allocations = []
        for budget, active_time, ok in zip(budgets, active, feasible):
            if not ok:
                allocations.append(
                    TimeAllocation.all_off(
                        design_points=self.design_points,
                        period_s=self.period_s,
                        alpha=alpha,
                        off_power_w=self.off_power_w,
                        budget_j=float(budget),
                        budget_feasible=False,
                    )
                )
                continue
            allocations.append(
                TimeAllocation.single_point(
                    design_points=self.design_points,
                    name=name,
                    active_time_s=float(active_time),
                    period_s=self.period_s,
                    alpha=alpha,
                    off_power_w=self.off_power_w,
                    budget_j=float(budget),
                )
            )
        return allocations

    def _index_of(self, name: str) -> int:
        for index, dp in enumerate(self.design_points):
            if dp.name == name:
                return index
        raise KeyError(
            f"unknown design point {name!r}; have "
            f"{[dp.name for dp in self.design_points]}"
        )


__all__ = [
    "BatchAllocator",
    "BatchArrays",
    "BatchGridResult",
    "ConsumptionCurve",
    "ConsumptionCurveError",
    "StackedConsumptionCurves",
    "StaticSeries",
]
