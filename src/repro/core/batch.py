"""Vectorized batch allocation engine: solve whole grids of REAP LPs at once.

Why this module exists
----------------------
Every sweep-style experiment in the reproduction -- the Figure 5/6
energy-budget sweeps, the alpha ablations and the month-long solar study of
Section 5.4 -- solves the *same* tiny two-constraint LP thousands of times
while only the energy budget (and sometimes alpha) varies.  Solving those
instances one at a time through :class:`~repro.core.allocator.ReapAllocator`
rebuilds a tableau and runs a Python pivot loop per instance, which makes
fleet-scale studies (many scenarios x many periods) needlessly slow.

:class:`BatchAllocator` exploits the structure proven by
:mod:`repro.core.analytic`: the REAP LP has only two structural constraints
(the time identity and the energy budget), so every optimum lies at

1. the **all-off** vertex,
2. a **single-point** vertex (one design point active as long as the budget
   or the period allows), or
3. a **pair "blend"** vertex (two design points with both constraints
   binding -- e.g. the DP4/DP5 split at a 5 J budget).

For a fixed design-point set there are only ``1 + N + N*(N-1)/2`` candidate
vertices.  The engine enumerates them *once* as NumPy arrays and evaluates
all of them against **all** budgets and alphas via broadcasting; an argmax
then selects the winner of every grid cell.  No Python-level loop touches
the (budget, alpha) grid, so a 200 x 5 sweep costs a handful of array
operations instead of a thousand simplex solves.

Quickstart
----------
Solve a whole Figure 5/6-style grid in one call::

    import numpy as np
    from repro.core.batch import BatchAllocator
    from repro.data.table2 import table2_design_points

    engine = BatchAllocator(table2_design_points())
    budgets = np.linspace(0.2, 10.4, 200)          # joules per hour
    grid = engine.solve_grid(budgets, alphas=(0.5, 1.0, 2.0))

    grid.objective.shape          # (3, 200): one row per alpha
    grid.expected_accuracy[1]     # accuracy curve at alpha = 1
    grid.active_time_s[2]         # active-time curve at alpha = 2
    allocation = grid.allocation(1, 99)   # full TimeAllocation for one cell

Single-alpha sweeps use :meth:`BatchAllocator.solve_budgets`, and the static
design-point baselines of Figure 5 are closed-form and exposed through
:meth:`BatchAllocator.static_grid`::

    series = engine.solve_budgets(budgets, alpha=1.0)   # A = 1 grid
    dp1 = engine.static_grid("DP1", budgets)            # StaticSeries arrays

Equivalence and scope
---------------------
The engine reproduces the scalar solvers' optima exactly: it enumerates the
same candidate vertices, applies the same feasibility tolerances and visits
candidates in the same order as :func:`repro.core.analytic.solve_analytic`
(all-off first, then single points, then pairs), so objectives agree with
:class:`~repro.core.allocator.ReapAllocator` to floating-point round-off.
(Under an *exact* objective tie between two vertices -- e.g. two design
points with identical accuracy -- either solver may return either vertex;
the optimal value is still identical.)
The property-based test-suite asserts this on randomized grids for all three
scalar formulations.  The scalar simplex remains the reference implementation
(and the only path for the two-phase ``"full"`` formulation); the batch
engine is the fast path for grid-shaped workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.design_point import DesignPoint, validate_design_points
from repro.core.objective import validate_alpha
from repro.core.problem import ReapProblem
from repro.core.schedule import TimeAllocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W

#: Tolerance below which two design-point powers are considered identical
#: (the pair system is singular and the single-point vertices cover it).
_POWER_GAP_TOLERANCE = 1e-15

#: Feasibility slack on vertex coordinates, matching the analytic solver.
_VERTEX_TOLERANCE = 1e-9


@dataclass(frozen=True)
class StaticSeries:
    """Closed-form series of one static design-point policy over a budget grid.

    The static baseline of Section 5 runs a single design point until the
    budget is exhausted; its active time, accuracy and objective are simple
    closed-form functions of the budget and need no LP at all.
    """

    name: str
    budgets_j: np.ndarray
    active_time_s: np.ndarray
    expected_accuracy: np.ndarray
    objective: np.ndarray


@dataclass(frozen=True)
class BatchGridResult:
    """Solution of a (budget x alpha) grid of REAP problems.

    All arrays are indexed ``[alpha_index, budget_index]`` (times have a
    trailing design-point axis).  The heavy per-cell
    :class:`~repro.core.schedule.TimeAllocation` objects are *not* built
    eagerly; use :meth:`allocation` / :meth:`allocations` to materialise the
    cells you actually need.
    """

    design_points: Tuple[DesignPoint, ...]
    budgets_j: np.ndarray          #: (B,) swept energy budgets
    alphas: np.ndarray             #: (A,) swept trade-off parameters
    times_s: np.ndarray            #: (A, B, N) optimal active times
    objective: np.ndarray          #: (A, B) optimal objective values J*
    expected_accuracy: np.ndarray  #: (A, B) alpha=1 objective of the optimum
    active_time_s: np.ndarray      #: (A, B) total active seconds
    energy_j: np.ndarray           #: (A, B) energy consumed by the optimum
    budget_feasible: np.ndarray    #: (B,) False below the off-state floor
    period_s: float
    off_power_w: float

    @property
    def num_alphas(self) -> int:
        """Number of swept alpha values A."""
        return int(self.alphas.size)

    @property
    def num_budgets(self) -> int:
        """Number of swept budgets B."""
        return int(self.budgets_j.size)

    @property
    def off_time_s(self) -> np.ndarray:
        """(A, B) seconds spent in the off state."""
        return self.period_s - self.active_time_s

    def allocation(self, alpha_index: int, budget_index: int) -> TimeAllocation:
        """Materialise the :class:`TimeAllocation` of one grid cell."""
        times = self.times_s[alpha_index, budget_index]
        active = float(times.sum())
        return TimeAllocation(
            design_points=self.design_points,
            times_s=tuple(float(t) for t in times),
            off_time_s=max(0.0, self.period_s - active),
            period_s=self.period_s,
            alpha=float(self.alphas[alpha_index]),
            off_power_w=self.off_power_w,
            budget_j=float(self.budgets_j[budget_index]),
            budget_feasible=bool(self.budget_feasible[budget_index]),
        )

    def allocations(self, alpha_index: int = 0) -> List[TimeAllocation]:
        """Materialise the allocations of one alpha row, one per budget."""
        return [
            self.allocation(alpha_index, budget_index)
            for budget_index in range(self.num_budgets)
        ]


class BatchAllocator:
    """Solves grids of REAP problems over a fixed design-point set.

    Parameters
    ----------
    design_points:
        The design points available to the runtime (typically the five
        Pareto-optimal DPs of Table 2).  Fixed for the engine's lifetime so
        the candidate-vertex structure can be precomputed once.
    period_s:
        Activity period :math:`T_P` in seconds.
    off_power_w:
        Power consumed in the off state.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
    ) -> None:
        validate_design_points(design_points)
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        if off_power_w < 0:
            raise ValueError(f"off-state power must be non-negative, got {off_power_w}")
        self.design_points = tuple(design_points)
        self.period_s = float(period_s)
        self.off_power_w = float(off_power_w)

        self._powers = np.array([dp.power_w for dp in self.design_points])
        self._accuracies = np.array([dp.accuracy for dp in self.design_points])
        self._marginal_powers = self._powers - self.off_power_w

        # Pair vertices: keep only pairs whose power draws differ (identical
        # powers make the 2x2 system singular; the single-point vertices
        # already cover those optima).
        n = len(self.design_points)
        pair_i, pair_j = np.triu_indices(n, k=1)
        gaps = self._powers[pair_i] - self._powers[pair_j]
        usable = np.abs(gaps) >= _POWER_GAP_TOLERANCE
        self._pair_i = pair_i[usable]
        self._pair_j = pair_j[usable]
        self._pair_gaps = gaps[usable]

    @classmethod
    def from_problem(cls, problem: ReapProblem) -> "BatchAllocator":
        """Build an engine matching a scalar problem's fixed parameters."""
        return cls(
            problem.design_points,
            period_s=problem.period_s,
            off_power_w=problem.off_power_w,
        )

    # --- convenience ----------------------------------------------------------
    @property
    def num_design_points(self) -> int:
        """Number of design points N."""
        return len(self.design_points)

    @property
    def num_candidate_vertices(self) -> int:
        """Candidate vertices evaluated per grid cell (off + singles + pairs)."""
        return 1 + self.num_design_points + self._pair_i.size

    @property
    def min_required_energy_j(self) -> float:
        """Energy needed to stay off for the whole period."""
        return self.off_power_w * self.period_s

    @property
    def max_useful_energy_j(self) -> float:
        """Budget past which every additional joule is wasted."""
        return float(self._powers.max()) * self.period_s

    # --- candidate enumeration -------------------------------------------------
    def _candidate_times(
        self, budgets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate all candidate vertices against all budgets at once.

        Returns ``(t_single, t_pair_i, t_pair_j, pair_feasible)`` where
        ``t_single`` is ``(B, N)`` and the pair arrays are ``(B, K)``.
        """
        surplus = budgets - self.min_required_energy_j          # (B,)

        # Single-point vertices: run DP i as long as the budget (or the
        # period) allows; non-positive marginal power means the DP is cheaper
        # than staying off, so it runs the whole period.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_single = np.where(
                self._marginal_powers[None, :] > 0,
                surplus[:, None] / self._marginal_powers[None, :],
                self.period_s,
            )
        t_single = np.clip(t_single, 0.0, self.period_s)        # (B, N)

        # Pair vertices: both the time identity and the energy budget bind.
        #   t_i + t_j = TP,  P_i t_i + P_j t_j = Eb
        t_pair_i = (
            budgets[:, None] - self._powers[self._pair_j][None, :] * self.period_s
        ) / self._pair_gaps[None, :]                            # (B, K)
        t_pair_j = self.period_s - t_pair_i
        pair_feasible = (t_pair_i >= -_VERTEX_TOLERANCE) & (
            t_pair_j >= -_VERTEX_TOLERANCE
        )
        t_pair_i = np.maximum(t_pair_i, 0.0)
        t_pair_j = np.maximum(t_pair_j, 0.0)

        # Mirror the analytic solver's post-clamp feasibility tolerances: the
        # clamped vertex must still respect the period and the budget.
        total = t_pair_i + t_pair_j
        energy = (
            self._powers[self._pair_i][None, :] * t_pair_i
            + self._powers[self._pair_j][None, :] * t_pair_j
            + self.off_power_w * (self.period_s - total)
        )
        pair_feasible &= total <= self.period_s * (1 + _VERTEX_TOLERANCE)
        pair_feasible &= energy <= budgets[:, None] * (1 + _VERTEX_TOLERANCE) + 1e-12
        return t_single, t_pair_i, t_pair_j, pair_feasible

    # --- grid solves -----------------------------------------------------------
    def solve_grid(
        self,
        budgets_j: Sequence[float],
        alphas: Sequence[float] = (1.0,),
    ) -> BatchGridResult:
        """Solve every (alpha, budget) cell of the grid in one vectorized pass.

        Parameters
        ----------
        budgets_j:
            Energy budgets to sweep (any non-negative values; budgets below
            the off-state floor yield the all-off allocation flagged
            infeasible, exactly like the scalar allocator with
            ``clip_infeasible=True``).
        alphas:
            Trade-off parameters to sweep.
        """
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        if budgets.size == 0:
            raise ValueError("budget grid is empty")
        if np.any(budgets < 0):
            raise ValueError("energy budgets must be non-negative")
        alpha_grid = np.array([validate_alpha(a) for a in np.atleast_1d(alphas)])
        if alpha_grid.size == 0:
            raise ValueError("alpha grid is empty")

        n = self.num_design_points
        num_budgets = budgets.size
        num_alphas = alpha_grid.size
        feasible = budgets >= self.min_required_energy_j - 1e-12   # (B,)

        t_single, t_pair_i, t_pair_j, pair_feasible = self._candidate_times(budgets)

        # Objective weights a_i^alpha for every alpha: (A, N).  numpy already
        # yields 0**0 == 1, matching DesignPoint.weighted_accuracy.
        weights = self._accuracies[None, :] ** alpha_grid[:, None]

        # Candidate values, broadcast over (A, B, candidate): the all-off
        # vertex scores zero, singles score w_i * t_i, pairs score the blend.
        value_off = np.zeros((num_alphas, num_budgets, 1))
        value_single = weights[:, None, :] * t_single[None, :, :]
        value_pair = (
            weights[:, None, self._pair_i] * t_pair_i[None, :, :]
            + weights[:, None, self._pair_j] * t_pair_j[None, :, :]
        )
        value_pair = np.where(pair_feasible[None, :, :], value_pair, -np.inf)

        # Candidate order matches solve_analytic (off, singles, pairs) so
        # argmax breaks ties identically and the winning vertices coincide.
        values = np.concatenate([value_off, value_single, value_pair], axis=2)
        winners = np.argmax(values, axis=2)                        # (A, B)
        winners[:, ~feasible] = 0

        times = np.zeros((num_alphas, num_budgets, n))
        single_won = (winners >= 1) & (winners <= n)
        if np.any(single_won):
            alpha_idx, budget_idx = np.nonzero(single_won)
            point_idx = winners[alpha_idx, budget_idx] - 1
            times[alpha_idx, budget_idx, point_idx] = t_single[budget_idx, point_idx]
        pair_won = winners > n
        if np.any(pair_won):
            alpha_idx, budget_idx = np.nonzero(pair_won)
            k = winners[alpha_idx, budget_idx] - 1 - n
            times[alpha_idx, budget_idx, self._pair_i[k]] = t_pair_i[budget_idx, k]
            times[alpha_idx, budget_idx, self._pair_j[k]] = t_pair_j[budget_idx, k]

        active = times.sum(axis=2)                                 # (A, B)
        objective = np.einsum("abn,an->ab", times, weights) / self.period_s
        accuracy = (times @ self._accuracies) / self.period_s
        energy = times @ self._powers + self.off_power_w * (self.period_s - active)
        return BatchGridResult(
            design_points=self.design_points,
            budgets_j=budgets,
            alphas=alpha_grid,
            times_s=times,
            objective=objective,
            expected_accuracy=accuracy,
            active_time_s=active,
            energy_j=energy,
            budget_feasible=feasible,
            period_s=self.period_s,
            off_power_w=self.off_power_w,
        )

    def solve_budgets(
        self, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> BatchGridResult:
        """Solve a single-alpha budget sweep (an ``A = 1`` grid)."""
        return self.solve_grid(budgets_j, alphas=(alpha,))

    def solve_allocations(
        self, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> List[TimeAllocation]:
        """Solve a budget sweep and materialise one allocation per budget.

        This is the drop-in replacement for calling
        ``ReapAllocator().solve(problem.with_budget(b))`` in a loop.
        """
        return self.solve_budgets(budgets_j, alpha=alpha).allocations(0)

    # --- static (single design point) baselines --------------------------------
    def static_active_times(self, name: str, budgets_j: Sequence[float]) -> np.ndarray:
        """Closed-form active times of the static policy running ``name``."""
        index = self._index_of(name)
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        surplus = budgets - self.min_required_energy_j
        marginal = self._marginal_powers[index]
        if marginal <= 0:
            active = np.full(budgets.shape, self.period_s)
        else:
            active = np.clip(surplus / marginal, 0.0, self.period_s)
        active[budgets < self.min_required_energy_j - 1e-12] = 0.0
        return active

    def static_grid(
        self, name: str, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> StaticSeries:
        """Closed-form series of one static design point over a budget grid."""
        index = self._index_of(name)
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        active = self.static_active_times(name, budgets)
        accuracy = self._accuracies[index]
        weight = self.design_points[index].weighted_accuracy(validate_alpha(alpha))
        return StaticSeries(
            name=name,
            budgets_j=budgets,
            active_time_s=active,
            expected_accuracy=accuracy * active / self.period_s,
            objective=weight * active / self.period_s,
        )

    def static_allocations(
        self, name: str, budgets_j: Sequence[float], alpha: float = 1.0
    ) -> List[TimeAllocation]:
        """Materialise the static policy's allocations, one per budget."""
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        active = self.static_active_times(name, budgets)
        feasible = budgets >= self.min_required_energy_j - 1e-12
        allocations = []
        for budget, active_time, ok in zip(budgets, active, feasible):
            if not ok:
                allocations.append(
                    TimeAllocation.all_off(
                        design_points=self.design_points,
                        period_s=self.period_s,
                        alpha=alpha,
                        off_power_w=self.off_power_w,
                        budget_j=float(budget),
                        budget_feasible=False,
                    )
                )
                continue
            allocations.append(
                TimeAllocation.single_point(
                    design_points=self.design_points,
                    name=name,
                    active_time_s=float(active_time),
                    period_s=self.period_s,
                    alpha=alpha,
                    off_power_w=self.off_power_w,
                    budget_j=float(budget),
                )
            )
        return allocations

    def _index_of(self, name: str) -> int:
        for index, dp in enumerate(self.design_points):
            if dp.name == name:
                return index
        raise KeyError(
            f"unknown design point {name!r}; have "
            f"{[dp.name for dp in self.design_points]}"
        )


__all__ = ["BatchAllocator", "BatchGridResult", "StaticSeries"]
