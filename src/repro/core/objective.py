"""Objective function of the REAP optimisation problem (Equation 1).

The generalised objective is

.. math::

    J(t) = \\frac{1}{T_P} \\sum_{i=1}^N a_i^{\\alpha} t_i

where :math:`a_i` is the recognition accuracy of design point :math:`i`,
:math:`t_i` the time allocated to it and :math:`\\alpha` the accuracy /
active-time trade-off knob:

* ``alpha == 1`` -- :math:`J` is the *expected accuracy* over the period;
* ``alpha == 0`` -- :math:`J` is the normalised *active time*;
* ``alpha  > 1`` -- accuracy is emphasised over active time;
* ``alpha  < 1`` -- active time is emphasised over accuracy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.design_point import DesignPoint


def validate_alpha(alpha: float) -> float:
    """Validate the trade-off parameter and return it as a float.

    Alpha must be finite and non-negative; the paper sweeps it over
    ``{0.5, 1, 2, 4, 8}`` but any non-negative value is mathematically valid.
    """
    alpha = float(alpha)
    if not np.isfinite(alpha) or alpha < 0.0:
        raise ValueError(f"alpha must be finite and non-negative, got {alpha}")
    return alpha


def accuracy_weights(
    design_points: Sequence[DesignPoint],
    alpha: float,
) -> np.ndarray:
    """Return the objective weights :math:`a_i^{\\alpha}` for each design point."""
    alpha = validate_alpha(alpha)
    return np.array([dp.weighted_accuracy(alpha) for dp in design_points])


def objective_value(
    times_s: Sequence[float],
    design_points: Sequence[DesignPoint],
    alpha: float,
    period_s: float,
) -> float:
    """Evaluate :math:`J(t)` for a given time allocation.

    Parameters
    ----------
    times_s:
        Time in seconds allocated to each design point (same order as
        ``design_points``).
    design_points:
        Design points providing the accuracies :math:`a_i`.
    alpha:
        Trade-off parameter.
    period_s:
        Activity period :math:`T_P` in seconds.
    """
    times = np.asarray(times_s, dtype=float)
    if times.size != len(design_points):
        raise ValueError(
            f"expected {len(design_points)} time values, got {times.size}"
        )
    if period_s <= 0.0:
        raise ValueError(f"period must be positive, got {period_s}")
    weights = accuracy_weights(design_points, alpha)
    return float(weights @ times) / period_s


def expected_accuracy(
    times_s: Sequence[float],
    design_points: Sequence[DesignPoint],
    period_s: float,
) -> float:
    """Expected accuracy over the period: :math:`J(t)` with ``alpha = 1``."""
    return objective_value(times_s, design_points, alpha=1.0, period_s=period_s)


def active_time_fraction(times_s: Sequence[float], period_s: float) -> float:
    """Fraction of the period the device is active."""
    times = np.asarray(times_s, dtype=float)
    if period_s <= 0.0:
        raise ValueError(f"period must be positive, got {period_s}")
    return float(times.sum()) / period_s


__all__ = [
    "accuracy_weights",
    "active_time_fraction",
    "expected_accuracy",
    "objective_value",
    "validate_alpha",
]
