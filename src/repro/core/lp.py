"""Linear-program containers used by the REAP optimiser.

The REAP runtime solves a small linear program every activity period
(Equations 1-4 of the paper).  This module defines a provider-agnostic
description of a maximisation LP in the conventional form

.. math::

    \\max_x c^T x \\quad \\text{s.t.} \\quad A_{ub} x \\le b_{ub},
    \\; A_{eq} x = b_{eq}, \\; x \\ge 0

together with the solution/status types shared by the solvers in
:mod:`repro.core.simplex` and :mod:`repro.core.analytic`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


class LPStatus(enum.Enum):
    """Termination status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"

    @property
    def ok(self) -> bool:
        """True when an optimal solution was found."""
        return self is LPStatus.OPTIMAL


class LPError(RuntimeError):
    """Raised when an LP cannot be solved and the caller demanded a solution."""


class InfeasibleProblemError(LPError):
    """Raised when the LP has no feasible point."""


class UnboundedProblemError(LPError):
    """Raised when the LP objective is unbounded above."""


@dataclass
class LinearProgram:
    """A maximisation linear program with non-negative variables.

    Parameters
    ----------
    objective:
        Coefficient vector ``c`` of length ``n``.
    a_ub, b_ub:
        Inequality constraints ``A_ub x <= b_ub``; ``a_ub`` has shape
        ``(m_ub, n)``.  May be empty.
    a_eq, b_eq:
        Equality constraints ``A_eq x = b_eq``; ``a_eq`` has shape
        ``(m_eq, n)``.  May be empty.
    variable_names:
        Optional names for the decision variables, used in reports and error
        messages.  Defaults to ``x0, x1, ...``.
    """

    objective: np.ndarray
    a_ub: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    b_ub: np.ndarray = field(default_factory=lambda: np.zeros(0))
    a_eq: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    b_eq: np.ndarray = field(default_factory=lambda: np.zeros(0))
    variable_names: Optional[List[str]] = None

    def __post_init__(self) -> None:
        self.objective = np.asarray(self.objective, dtype=float).ravel()
        n = self.objective.size
        if n == 0:
            raise ValueError("LP must have at least one decision variable")

        self.a_ub = _as_matrix(self.a_ub, n)
        self.b_ub = np.asarray(self.b_ub, dtype=float).ravel()
        self.a_eq = _as_matrix(self.a_eq, n)
        self.b_eq = np.asarray(self.b_eq, dtype=float).ravel()

        if self.a_ub.shape[0] != self.b_ub.size:
            raise ValueError(
                f"a_ub has {self.a_ub.shape[0]} rows but b_ub has "
                f"{self.b_ub.size} entries"
            )
        if self.a_eq.shape[0] != self.b_eq.size:
            raise ValueError(
                f"a_eq has {self.a_eq.shape[0]} rows but b_eq has "
                f"{self.b_eq.size} entries"
            )
        if self.variable_names is None:
            self.variable_names = [f"x{i}" for i in range(n)]
        elif len(self.variable_names) != n:
            raise ValueError(
                f"expected {n} variable names, got {len(self.variable_names)}"
            )
        for name, array in (("objective", self.objective),
                            ("a_ub", self.a_ub), ("b_ub", self.b_ub),
                            ("a_eq", self.a_eq), ("b_eq", self.b_eq)):
            if not np.all(np.isfinite(array)):
                raise ValueError(f"{name} contains non-finite values")

    # --- basic properties ----------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return self.objective.size

    @property
    def num_inequalities(self) -> int:
        """Number of <= constraints."""
        return self.a_ub.shape[0]

    @property
    def num_equalities(self) -> int:
        """Number of equality constraints."""
        return self.a_eq.shape[0]

    @property
    def num_constraints(self) -> int:
        """Total number of constraints (excluding variable bounds)."""
        return self.num_inequalities + self.num_equalities

    # --- evaluation -----------------------------------------------------------
    def objective_value(self, x: Sequence[float]) -> float:
        """Evaluate the objective ``c^T x``."""
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.num_variables:
            raise ValueError(
                f"expected {self.num_variables} values, got {x.size}"
            )
        return float(self.objective @ x)

    def is_feasible(self, x: Sequence[float], tolerance: float = 1e-7) -> bool:
        """Check whether ``x`` satisfies every constraint within ``tolerance``."""
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.num_variables:
            return False
        if np.any(x < -tolerance):
            return False
        if self.num_inequalities and np.any(self.a_ub @ x > self.b_ub + tolerance):
            return False
        if self.num_equalities and np.any(
            np.abs(self.a_eq @ x - self.b_eq) > tolerance
        ):
            return False
        return True

    def constraint_violation(self, x: Sequence[float]) -> float:
        """Return the maximum constraint violation at ``x`` (0 when feasible)."""
        x = np.asarray(x, dtype=float).ravel()
        violations = [0.0]
        violations.append(float(np.max(-x, initial=0.0)))
        if self.num_inequalities:
            violations.append(float(np.max(self.a_ub @ x - self.b_ub, initial=0.0)))
        if self.num_equalities:
            violations.append(float(np.max(np.abs(self.a_eq @ x - self.b_eq), initial=0.0)))
        return max(violations)


@dataclass(frozen=True)
class LPSolution:
    """Result of an LP solve.

    Attributes
    ----------
    status:
        Termination status.
    x:
        Primal solution (meaningful only when ``status.ok``); matches the
        variable order of the originating :class:`LinearProgram`.
    objective_value:
        Objective at ``x``.
    iterations:
        Number of simplex pivots performed (Phase I + Phase II).
    """

    status: LPStatus
    x: np.ndarray
    objective_value: float
    iterations: int
    message: str = ""

    @property
    def ok(self) -> bool:
        """True when an optimal solution was found."""
        return self.status.ok

    def value(self, index: int) -> float:
        """Return the value of variable ``index``."""
        return float(self.x[index])

    def raise_for_status(self) -> "LPSolution":
        """Raise a descriptive exception unless the solve was optimal."""
        if self.status is LPStatus.INFEASIBLE:
            raise InfeasibleProblemError(self.message or "LP is infeasible")
        if self.status is LPStatus.UNBOUNDED:
            raise UnboundedProblemError(self.message or "LP is unbounded")
        if self.status is LPStatus.ITERATION_LIMIT:
            raise LPError(self.message or "iteration limit reached")
        return self


def _as_matrix(values: object, num_columns: int) -> np.ndarray:
    """Coerce ``values`` into a 2-D float matrix with ``num_columns`` columns."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return np.zeros((0, num_columns))
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(f"constraint matrix must be 2-D, got shape {array.shape}")
    if array.shape[1] != num_columns:
        raise ValueError(
            f"constraint matrix has {array.shape[1]} columns, expected {num_columns}"
        )
    return array


__all__ = [
    "InfeasibleProblemError",
    "LPError",
    "LPSolution",
    "LPStatus",
    "LinearProgram",
    "UnboundedProblemError",
]
