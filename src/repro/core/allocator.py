"""REAP allocator: turn a :class:`ReapProblem` into a :class:`TimeAllocation`.

The allocator wraps the LP machinery behind the interface the runtime
controller actually uses: ``solve(problem) -> TimeAllocation``.  Three
interchangeable back-ends are provided:

* ``"reduced"`` (default) -- substitute the off time out of the problem and
  solve the resulting all-``<=`` LP with the literal Algorithm 1 tableau
  procedure (:func:`repro.core.simplex.simplex_max_leq`).
* ``"full"`` -- solve the full formulation (explicit off-time variable and an
  equality constraint) with the two-phase simplex.
* ``"analytic"`` -- exact vertex enumeration
  (:func:`repro.core.analytic.solve_analytic`).

All back-ends return the same optimal objective value; the tests verify this
systematically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.analytic import solve_analytic
from repro.core.problem import BudgetTooSmallError, ReapProblem
from repro.core.schedule import TimeAllocation
from repro.core.simplex import PivotRule, SimplexSolver, simplex_max_leq


#: Valid allocator back-end names.
FORMULATIONS = ("reduced", "full", "analytic")


@dataclass
class AllocatorConfig:
    """Configuration of a :class:`ReapAllocator`.

    Attributes
    ----------
    formulation:
        One of ``"reduced"``, ``"full"`` or ``"analytic"``.
    pivot_rule:
        Simplex pivot rule (ignored by the analytic back-end).
    max_iterations:
        Simplex pivot limit (Algorithm 1's "max. iterations" input).
    clip_infeasible:
        When True (default) a budget below the off-state floor yields the
        all-off allocation flagged ``budget_feasible=False`` instead of
        raising.  This mirrors the physical device, which simply stays dark
        when there is not even enough energy for the standby circuitry.
    cross_check:
        When True, every simplex solution is verified against the analytic
        solver and a mismatch raises ``RuntimeError``.  Intended for tests
        and debugging; off by default for speed.
    """

    formulation: str = "reduced"
    pivot_rule: PivotRule = PivotRule.DANTZIG
    max_iterations: int = 200
    clip_infeasible: bool = True
    cross_check: bool = False

    def __post_init__(self) -> None:
        if self.formulation not in FORMULATIONS:
            raise ValueError(
                f"formulation must be one of {FORMULATIONS}, got {self.formulation!r}"
            )
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")


class ReapAllocator:
    """Solves REAP allocation problems.

    Examples
    --------
    >>> from repro.data import table2_design_points
    >>> from repro.core import ReapProblem, ReapAllocator
    >>> problem = ReapProblem(tuple(table2_design_points()), energy_budget_j=5.0)
    >>> allocation = ReapAllocator().solve(problem)
    >>> round(allocation.expected_accuracy, 2)
    0.82
    """

    def __init__(self, config: Optional[AllocatorConfig] = None, **overrides) -> None:
        if config is None:
            config = AllocatorConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self._solver = SimplexSolver(
            pivot_rule=config.pivot_rule,
            max_iterations=config.max_iterations,
        )
        self.last_iterations: int = 0

    # -------------------------------------------------------------------------
    def solve(self, problem: ReapProblem) -> TimeAllocation:
        """Return the optimal time allocation for ``problem``.

        Raises
        ------
        BudgetTooSmallError
            When the budget is below the off-state floor and
            ``clip_infeasible`` is disabled.
        LPError
            When the underlying LP solve fails (should not happen for
            well-formed problems).
        """
        if not problem.is_budget_feasible:
            if self.config.clip_infeasible:
                self.last_iterations = 0
                return problem.all_off_allocation(budget_feasible=False)
            raise BudgetTooSmallError(
                f"budget {problem.energy_budget_j} J below the off-state floor "
                f"{problem.min_required_energy_j} J"
            )

        if self.config.formulation == "analytic":
            allocation = solve_analytic(problem)
            self.last_iterations = 0
        elif self.config.formulation == "full":
            allocation = self._solve_full(problem)
        else:
            allocation = self._solve_reduced(problem)

        if self.config.cross_check:
            self._verify_against_analytic(problem, allocation)
        allocation.check(problem.energy_budget_j)
        return allocation

    def solve_with_budget(
        self, problem: ReapProblem, energy_budget_j: float
    ) -> TimeAllocation:
        """Convenience: re-solve ``problem`` under a different energy budget."""
        return self.solve(problem.with_budget(energy_budget_j))

    # -------------------------------------------------------------------------
    @staticmethod
    def _scaled_objective(objective):
        """Rescale the objective so its largest coefficient is 1.

        The argmax of the LP is invariant to positive scaling, but the raw
        coefficients a_i^alpha / T_P can be tiny (low accuracy, large alpha)
        and would otherwise fall below the solver's optimality tolerance.
        The returned objective is only used for pivoting; the allocation's
        reported objective value is always recomputed from the times.
        """
        peak = float(max(objective.max(initial=0.0), 0.0))
        if peak <= 0.0:
            return objective
        return objective / peak

    def _solve_reduced(self, problem: ReapProblem) -> TimeAllocation:
        lp = problem.to_reduced_lp()
        solution = simplex_max_leq(
            lp.a_ub,
            lp.b_ub,
            self._scaled_objective(lp.objective),
            max_iterations=self.config.max_iterations,
            pivot_rule=self.config.pivot_rule,
        )
        solution.raise_for_status()
        self.last_iterations = solution.iterations
        return problem.allocation_from_times(solution.x)

    def _solve_full(self, problem: ReapProblem) -> TimeAllocation:
        from repro.core.lp import LinearProgram

        lp = problem.to_full_lp()
        scaled = LinearProgram(
            objective=self._scaled_objective(lp.objective),
            a_ub=lp.a_ub,
            b_ub=lp.b_ub,
            a_eq=lp.a_eq,
            b_eq=lp.b_eq,
            variable_names=list(lp.variable_names),
        )
        solution = self._solver.solve(scaled)
        solution.raise_for_status()
        self.last_iterations = solution.iterations
        times = solution.x[: problem.num_design_points]
        off_time = float(solution.x[problem.num_design_points])
        return problem.allocation_from_times(times, off_time_s=off_time)

    def _verify_against_analytic(
        self, problem: ReapProblem, allocation: TimeAllocation
    ) -> None:
        reference = solve_analytic(problem)
        gap = reference.objective - allocation.objective
        scale = max(1e-9, abs(reference.objective))
        if gap > 1e-6 * scale + 1e-9:
            raise RuntimeError(
                "simplex solution is sub-optimal: objective "
                f"{allocation.objective} vs analytic {reference.objective} "
                f"(budget {problem.energy_budget_j} J, alpha {problem.alpha})"
            )


__all__ = ["AllocatorConfig", "FORMULATIONS", "ReapAllocator"]
