"""Dense tableau simplex solver (Algorithm 1 of the REAP paper).

The paper solves the accuracy/active-time allocation LP on the IoT device
itself with a tableau-based simplex procedure: build a tableau from the
objective and the constraints, repeatedly select a pivot column (the most
positive reduced cost), select a pivot row (minimum-ratio test), and update
the tableau until every reduced cost is non-positive.

This module implements that procedure from scratch, in two layers:

* :func:`simplex_max_leq` -- the literal Algorithm 1: maximise ``c^T x``
  subject to ``A x <= b`` with ``b >= 0`` and ``x >= 0``, starting from the
  all-slack basis.  This is the code path REAP uses at runtime because the
  reduced problem formulation (off-time eliminated) has exactly this shape.
* :class:`SimplexSolver` -- a general two-phase simplex that also accepts
  equality constraints and negative right-hand sides, used for the full
  (non-reduced) formulation and for cross-checks in the test-suite.

Both layers support the Dantzig (largest reduced cost) and Bland (smallest
index, anti-cycling) pivot rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lp import (
    LinearProgram,
    LPSolution,
    LPStatus,
)


class PivotRule(enum.Enum):
    """Entering-variable selection rule."""

    DANTZIG = "dantzig"
    BLAND = "bland"


@dataclass(frozen=True)
class SimplexStats:
    """Diagnostics of a simplex run (used by the solver-scaling benchmark)."""

    phase1_iterations: int
    phase2_iterations: int

    @property
    def total_iterations(self) -> int:
        """Total pivots across both phases."""
        return self.phase1_iterations + self.phase2_iterations


class _Tableau:
    """Mutable simplex tableau with an explicit basis.

    The tableau stores the constraint rows ``[A | b]`` and maintains, for a
    given cost vector, a reduced-cost row used for pivot-column selection.
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, basis: Sequence[int],
                 tolerance: float) -> None:
        self.a = np.array(a, dtype=float)
        self.b = np.array(b, dtype=float)
        self.basis = list(basis)
        self.tolerance = tolerance
        if self.a.shape[0] != self.b.size:
            raise ValueError("A and b have inconsistent shapes")
        if len(self.basis) != self.a.shape[0]:
            raise ValueError("basis size must match number of rows")

    @property
    def num_rows(self) -> int:
        return self.a.shape[0]

    @property
    def num_cols(self) -> int:
        return self.a.shape[1]

    def reduced_costs(self, costs: np.ndarray) -> np.ndarray:
        """Return the reduced-cost vector ``c_j - c_B B^{-1} A_j``.

        Because the tableau is kept in basis-canonical form (each basic
        column is a unit vector), the multipliers are simply the basic costs
        applied to the current rows.
        """
        basic_costs = costs[self.basis]
        return costs - basic_costs @ self.a

    def objective_value(self, costs: np.ndarray) -> float:
        """Current objective value ``c_B^T x_B``."""
        return float(costs[self.basis] @ self.b)

    def solution(self, num_variables: int) -> np.ndarray:
        """Extract the primal solution restricted to the first ``num_variables``."""
        x = np.zeros(self.num_cols)
        for row, column in enumerate(self.basis):
            x[column] = self.b[row]
        return x[:num_variables]

    def choose_pivot_column(self, reduced: np.ndarray, rule: PivotRule,
                            allowed: Optional[np.ndarray] = None) -> int:
        """Return the entering column index, or -1 when optimal.

        ``allowed`` is a boolean mask restricting which columns may enter
        (used in Phase II to keep artificial variables out).
        """
        candidates = reduced > self.tolerance
        if allowed is not None:
            candidates &= allowed
        indices = np.nonzero(candidates)[0]
        if indices.size == 0:
            return -1
        if rule is PivotRule.BLAND:
            return int(indices[0])
        # Dantzig: most positive reduced cost; ties broken by smallest index.
        best = indices[np.argmax(reduced[indices])]
        return int(best)

    def choose_pivot_row(self, column: int) -> int:
        """Minimum-ratio test for the leaving row, or -1 when unbounded."""
        ratios = np.full(self.num_rows, np.inf)
        positive = self.a[:, column] > self.tolerance
        ratios[positive] = self.b[positive] / self.a[positive, column]
        if not np.any(np.isfinite(ratios)):
            return -1
        min_ratio = ratios.min()
        # Tie-break on the smallest basic variable index (lexicographic-ish,
        # avoids cycling in the degenerate cases we encounter).
        tied = np.nonzero(ratios <= min_ratio + self.tolerance)[0]
        best_row = min(tied, key=lambda row: self.basis[row])
        return int(best_row)

    def pivot(self, row: int, column: int) -> None:
        """Perform a pivot: variable ``column`` enters, ``basis[row]`` leaves.

        The elimination of the pivot column from the other rows is a rank-1
        update ``A -= f * A[row]`` (with the pivot row's own factor zeroed),
        done as one NumPy outer product instead of a Python loop over rows.
        """
        pivot_value = self.a[row, column]
        if abs(pivot_value) <= self.tolerance:
            raise ValueError("pivot element is numerically zero")
        self.a[row] /= pivot_value
        self.b[row] /= pivot_value
        factors = self.a[:, column].copy()
        factors[row] = 0.0
        self.a -= np.outer(factors, self.a[row])
        self.b -= factors * self.b[row]
        # Clean tiny negative right-hand sides produced by round-off.
        magnitude = np.abs(self.b)
        np.copyto(self.b, magnitude, where=magnitude < self.tolerance)
        self.basis[row] = column

    def run(self, costs: np.ndarray, rule: PivotRule, max_iterations: int,
            allowed: Optional[np.ndarray] = None) -> Tuple[LPStatus, int]:
        """Iterate pivots until optimality, unboundedness or iteration limit."""
        for iteration in range(max_iterations):
            reduced = self.reduced_costs(costs)
            column = self.choose_pivot_column(reduced, rule, allowed)
            if column < 0:
                return LPStatus.OPTIMAL, iteration
            row = self.choose_pivot_row(column)
            if row < 0:
                return LPStatus.UNBOUNDED, iteration
            self.pivot(row, column)
        return LPStatus.ITERATION_LIMIT, max_iterations


def simplex_max_leq(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    objective: np.ndarray,
    max_iterations: int = 1000,
    pivot_rule: PivotRule = PivotRule.DANTZIG,
    tolerance: float = 1e-9,
) -> LPSolution:
    """Maximise ``c^T x`` s.t. ``A x <= b``, ``x >= 0`` with ``b >= 0``.

    This is the literal REAP procedure (Algorithm 1): slack variables provide
    the initial basic feasible solution, the pivot column is the largest
    positive reduced cost, and the pivot row follows the minimum-ratio test.

    Raises
    ------
    ValueError
        If any entry of ``b`` is negative (the all-slack basis would not be
        feasible; use :class:`SimplexSolver` for that case).
    """
    a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b_ub = np.asarray(b_ub, dtype=float).ravel()
    objective = np.asarray(objective, dtype=float).ravel()
    num_constraints, num_variables = a_ub.shape
    if b_ub.size != num_constraints:
        raise ValueError("b_ub length must match the number of constraint rows")
    if objective.size != num_variables:
        raise ValueError("objective length must match the number of columns")
    if np.any(b_ub < -tolerance):
        raise ValueError(
            "simplex_max_leq requires b >= 0; use SimplexSolver for general LPs"
        )

    # Tableau columns: original variables followed by one slack per row.
    a_full = np.hstack([a_ub, np.eye(num_constraints)])
    costs = np.concatenate([objective, np.zeros(num_constraints)])
    basis = list(range(num_variables, num_variables + num_constraints))
    tableau = _Tableau(a_full, np.maximum(b_ub, 0.0), basis, tolerance)

    status, iterations = tableau.run(costs, pivot_rule, max_iterations)
    x = tableau.solution(num_variables)
    objective_value = float(objective @ x)
    return LPSolution(
        status=status,
        x=x,
        objective_value=objective_value,
        iterations=iterations,
        message=f"simplex_max_leq finished with status {status.value}",
    )


class SimplexSolver:
    """Two-phase dense simplex for general maximisation LPs.

    Handles ``<=`` constraints with arbitrary-sign right-hand sides and
    equality constraints by introducing surplus and artificial variables and
    running a Phase I feasibility problem before the Phase II optimisation.

    Parameters
    ----------
    pivot_rule:
        Entering-variable rule; Dantzig by default, Bland for guaranteed
        termination on degenerate problems.
    max_iterations:
        Pivot limit per phase.  ``None`` selects a generous default scaled
        with problem size.
    tolerance:
        Numerical tolerance for optimality and feasibility tests.
    """

    def __init__(
        self,
        pivot_rule: PivotRule = PivotRule.DANTZIG,
        max_iterations: Optional[int] = None,
        tolerance: float = 1e-9,
    ) -> None:
        self.pivot_rule = pivot_rule
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.last_stats: Optional[SimplexStats] = None

    # -------------------------------------------------------------------------
    def solve(self, lp: LinearProgram) -> LPSolution:
        """Solve ``lp`` and return an :class:`~repro.core.lp.LPSolution`."""
        num_variables = lp.num_variables
        rows: List[np.ndarray] = []
        rhs: List[float] = []
        senses: List[str] = []

        for i in range(lp.num_inequalities):
            row = lp.a_ub[i].copy()
            b = float(lp.b_ub[i])
            sense = "<="
            if b < 0:
                row, b, sense = -row, -b, ">="
            rows.append(row)
            rhs.append(b)
            senses.append(sense)
        for i in range(lp.num_equalities):
            row = lp.a_eq[i].copy()
            b = float(lp.b_eq[i])
            if b < 0:
                row, b = -row, -b
            rows.append(row)
            rhs.append(b)
            senses.append("=")

        num_rows = len(rows)
        if num_rows == 0:
            return self._solve_unconstrained(lp)

        a = np.vstack(rows) if rows else np.zeros((0, num_variables))
        b = np.asarray(rhs, dtype=float)

        # Column layout: originals | slack/surplus | artificials.
        num_slack = num_rows
        artificial_rows = [i for i, sense in enumerate(senses) if sense != "<="]
        num_artificial = len(artificial_rows)
        total_cols = num_variables + num_slack + num_artificial

        a_full = np.zeros((num_rows, total_cols))
        a_full[:, :num_variables] = a
        basis: List[int] = [0] * num_rows
        artificial_columns: List[int] = []
        next_artificial = num_variables + num_slack
        for i, sense in enumerate(senses):
            slack_col = num_variables + i
            if sense == "<=":
                a_full[i, slack_col] = 1.0
                basis[i] = slack_col
            elif sense == ">=":
                a_full[i, slack_col] = -1.0
                a_full[i, next_artificial] = 1.0
                basis[i] = next_artificial
                artificial_columns.append(next_artificial)
                next_artificial += 1
            else:  # equality
                a_full[i, next_artificial] = 1.0
                basis[i] = next_artificial
                artificial_columns.append(next_artificial)
                next_artificial += 1

        tableau = _Tableau(a_full, b, basis, self.tolerance)
        max_iterations = self._iteration_limit(num_rows, total_cols)

        # --- Phase I: drive artificial variables to zero ----------------------
        phase1_iterations = 0
        if num_artificial:
            phase1_costs = np.zeros(total_cols)
            phase1_costs[artificial_columns] = -1.0
            status, phase1_iterations = tableau.run(
                phase1_costs, self.pivot_rule, max_iterations
            )
            if status is LPStatus.ITERATION_LIMIT:
                return self._limit_solution(lp, phase1_iterations)
            artificial_sum = -tableau.objective_value(phase1_costs)
            if artificial_sum > 1e-7:
                self.last_stats = SimplexStats(phase1_iterations, 0)
                return LPSolution(
                    status=LPStatus.INFEASIBLE,
                    x=np.zeros(num_variables),
                    objective_value=float("nan"),
                    iterations=phase1_iterations,
                    message="Phase I could not eliminate artificial variables",
                )
            self._expel_basic_artificials(tableau, num_variables, num_slack,
                                          set(artificial_columns))

        # --- Phase II: optimise the real objective ----------------------------
        phase2_costs = np.zeros(total_cols)
        phase2_costs[:num_variables] = lp.objective
        allowed = np.ones(total_cols, dtype=bool)
        if artificial_columns:
            allowed[artificial_columns] = False
        status, phase2_iterations = tableau.run(
            phase2_costs, self.pivot_rule, max_iterations, allowed=allowed
        )
        self.last_stats = SimplexStats(phase1_iterations, phase2_iterations)
        iterations = phase1_iterations + phase2_iterations
        if status is LPStatus.ITERATION_LIMIT:
            return self._limit_solution(lp, iterations)
        x = tableau.solution(num_variables)
        # Clip round-off noise; the solution is non-negative by construction.
        x = np.where(np.abs(x) < self.tolerance, 0.0, x)
        objective_value = float(lp.objective @ x)
        if status is LPStatus.UNBOUNDED:
            return LPSolution(
                status=LPStatus.UNBOUNDED,
                x=x,
                objective_value=float("inf"),
                iterations=iterations,
                message="objective is unbounded above",
            )
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=objective_value,
            iterations=iterations,
            message="optimal",
        )

    # -------------------------------------------------------------------------
    def _iteration_limit(self, num_rows: int, num_cols: int) -> int:
        if self.max_iterations is not None:
            return self.max_iterations
        return max(200, 50 * (num_rows + num_cols))

    def _solve_unconstrained(self, lp: LinearProgram) -> LPSolution:
        """Handle the degenerate case of an LP with no constraints."""
        if np.any(lp.objective > self.tolerance):
            return LPSolution(
                status=LPStatus.UNBOUNDED,
                x=np.zeros(lp.num_variables),
                objective_value=float("inf"),
                iterations=0,
                message="no constraints and a positive objective coefficient",
            )
        self.last_stats = SimplexStats(0, 0)
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=np.zeros(lp.num_variables),
            objective_value=0.0,
            iterations=0,
            message="optimal (origin)",
        )

    def _limit_solution(self, lp: LinearProgram, iterations: int) -> LPSolution:
        self.last_stats = SimplexStats(iterations, 0)
        return LPSolution(
            status=LPStatus.ITERATION_LIMIT,
            x=np.zeros(lp.num_variables),
            objective_value=float("nan"),
            iterations=iterations,
            message="iteration limit reached",
        )

    @staticmethod
    def _expel_basic_artificials(
        tableau: _Tableau,
        num_variables: int,
        num_slack: int,
        artificial_columns: set,
    ) -> None:
        """Pivot degenerate artificial variables out of the basis.

        After Phase I an artificial variable may remain basic at value zero.
        Pivot it out on any non-artificial column with a non-zero entry in its
        row; when the whole row is zero the constraint was redundant and the
        row can simply stay (it no longer influences the solution).
        """
        structural_end = num_variables + num_slack
        for row in range(tableau.num_rows):
            if tableau.basis[row] not in artificial_columns:
                continue
            pivot_column = -1
            for column in range(structural_end):
                if abs(tableau.a[row, column]) > tableau.tolerance:
                    pivot_column = column
                    break
            if pivot_column >= 0:
                tableau.pivot(row, pivot_column)


def solve_lp(
    lp: LinearProgram,
    pivot_rule: PivotRule = PivotRule.DANTZIG,
    max_iterations: Optional[int] = None,
    tolerance: float = 1e-9,
) -> LPSolution:
    """Convenience wrapper: solve ``lp`` with a fresh :class:`SimplexSolver`."""
    solver = SimplexSolver(
        pivot_rule=pivot_rule,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
    return solver.solve(lp)


__all__ = [
    "PivotRule",
    "SimplexSolver",
    "SimplexStats",
    "simplex_max_leq",
    "solve_lp",
]
