"""Pareto-front utilities over energy-accuracy design points.

Section 4.2 of the paper designs 24 candidate design points and keeps only
the five that are Pareto-optimal in the (energy per activity, accuracy)
plane.  This module provides the dominance filtering used for that selection
as well as helpers shared by the Figure 3 benchmark.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.design_point import DesignPoint


def is_dominated(
    candidate: DesignPoint,
    others: Iterable[DesignPoint],
    tolerance: float = 0.0,
) -> bool:
    """Return True if ``candidate`` is Pareto-dominated by any point in ``others``.

    Domination is evaluated on (accuracy up, power down).  A point does not
    dominate itself.
    """
    return any(
        other is not candidate and other.dominates(candidate, tolerance=tolerance)
        for other in others
    )


def pareto_front(
    points: Sequence[DesignPoint],
    tolerance: float = 0.0,
) -> List[DesignPoint]:
    """Return the Pareto-optimal subset of ``points``.

    The result is sorted by decreasing power (DP1-style ordering: the most
    accurate, most power hungry point first).  Points with identical
    (accuracy, power) pairs are deduplicated, keeping the first occurrence.

    Dominance is evaluated with one broadcast comparison over the full
    (accuracy, power) matrix instead of a Python double loop, so filtering
    large explored design spaces stays cheap.
    """
    unique: List[DesignPoint] = []
    seen: set = set()
    for point in points:
        key = (round(point.accuracy, 12), round(point.power_w, 15))
        if key in seen:
            continue
        seen.add(key)
        unique.append(point)
    if not unique:
        return []

    accuracy = np.array([dp.accuracy for dp in unique])
    power = np.array([dp.power_w for dp in unique])
    # dominates[i, j] is True when point j dominates point i (at least as
    # good on both axes, strictly better on one); the diagonal is False by
    # construction since a point is never strictly better than itself.
    at_least_as_good = (accuracy[None, :] >= accuracy[:, None] - tolerance) & (
        power[None, :] <= power[:, None] + tolerance
    )
    strictly_better = (accuracy[None, :] > accuracy[:, None] + tolerance) | (
        power[None, :] < power[:, None] - tolerance
    )
    dominated = np.any(at_least_as_good & strictly_better, axis=1)

    front = [point for point, is_dom in zip(unique, dominated) if not is_dom]
    front.sort(key=lambda dp: (dp.power_w, dp.accuracy), reverse=True)
    return front


def dominated_points(
    points: Sequence[DesignPoint],
    tolerance: float = 0.0,
) -> List[DesignPoint]:
    """Return the points of ``points`` that are *not* on the Pareto front."""
    front_names = {dp.name for dp in pareto_front(points, tolerance=tolerance)}
    return [dp for dp in points if dp.name not in front_names]


def pareto_staircase(
    points: Sequence[DesignPoint],
) -> List[Tuple[float, float]]:
    """Return the (energy per activity mJ, accuracy %) staircase of the front.

    This is the dashed line of Figure 3: the Pareto points sorted by energy,
    ready for plotting or tabulation.
    """
    front = pareto_front(points)
    pairs = [(dp.energy_per_activity_mj, dp.accuracy_percent) for dp in front]
    pairs.sort(key=lambda pair: pair[0])
    return pairs


def hypervolume_2d(
    points: Sequence[DesignPoint],
    reference_power_w: float,
    reference_accuracy: float = 0.0,
) -> float:
    """Compute the 2-D hypervolume dominated by the Pareto front.

    The hypervolume is measured against a reference point with power
    ``reference_power_w`` (worst acceptable power) and accuracy
    ``reference_accuracy`` (worst accuracy).  Used by tests and ablations to
    compare design-space explorations quantitatively; it is not part of the
    paper but is a convenient scalar quality measure of a front.
    """
    if reference_power_w <= 0:
        raise ValueError("reference power must be positive")
    front = pareto_front(points)
    # Sort by power ascending; each point contributes a rectangle between its
    # power and the previous (lower) accuracy level.
    front_sorted = sorted(front, key=lambda dp: dp.power_w)
    volume = 0.0
    previous_accuracy = reference_accuracy
    for dp in front_sorted:
        if dp.power_w > reference_power_w:
            continue
        width = reference_power_w - dp.power_w
        height = max(0.0, dp.accuracy - previous_accuracy)
        volume += width * height
        previous_accuracy = max(previous_accuracy, dp.accuracy)
    return volume


def select_pareto_subset(
    points: Sequence[DesignPoint],
    max_points: int,
) -> List[DesignPoint]:
    """Select up to ``max_points`` well-spread points from the Pareto front.

    Used by the ablation study that runs REAP with 2, 3 or 5 design points:
    the extremes (highest accuracy, lowest power) are always kept and the
    remaining slots are filled greedily to maximise spread in power.
    """
    if max_points < 1:
        raise ValueError("max_points must be at least 1")
    front = pareto_front(points)
    if len(front) <= max_points:
        return front

    by_power = sorted(front, key=lambda dp: dp.power_w)
    selected = [by_power[0]]
    if max_points >= 2:
        selected.append(by_power[-1])
    remaining = [dp for dp in by_power if dp not in selected]
    while len(selected) < max_points and remaining:
        # Greedily add the point farthest (in power) from the current set.
        def distance(dp: DesignPoint) -> float:
            return min(abs(dp.power_w - s.power_w) for s in selected)

        best = max(remaining, key=distance)
        selected.append(best)
        remaining.remove(best)
    selected.sort(key=lambda dp: dp.power_w, reverse=True)
    return selected


__all__ = [
    "dominated_points",
    "hypervolume_2d",
    "is_dominated",
    "pareto_front",
    "pareto_staircase",
    "select_pareto_subset",
]
