"""Tests for the REAP problem formulation (Equations 1-4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import BudgetTooSmallError, ReapProblem, static_allocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W


class TestProblemConstruction:
    def test_defaults_match_paper_constants(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        assert problem.period_s == ACTIVITY_PERIOD_S
        assert problem.off_power_w == OFF_STATE_POWER_W
        assert problem.num_design_points == 5

    def test_min_required_energy_is_off_floor(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        assert problem.min_required_energy_j == pytest.approx(0.18)

    def test_max_useful_energy_is_dp1_full_hour(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        assert problem.max_useful_energy_j == pytest.approx(9.936)

    def test_budget_feasibility_flag(self, table2_points):
        assert ReapProblem(tuple(table2_points), energy_budget_j=0.2).is_budget_feasible
        assert not ReapProblem(tuple(table2_points), energy_budget_j=0.1).is_budget_feasible

    def test_negative_budget_rejected(self, table2_points):
        with pytest.raises(ValueError):
            ReapProblem(tuple(table2_points), energy_budget_j=-1.0)

    def test_invalid_alpha_rejected(self, table2_points):
        with pytest.raises(ValueError):
            ReapProblem(tuple(table2_points), energy_budget_j=5.0, alpha=-1.0)

    def test_with_budget_and_with_alpha(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0, alpha=1.0)
        assert problem.with_budget(7.0).energy_budget_j == pytest.approx(7.0)
        assert problem.with_alpha(2.0).alpha == pytest.approx(2.0)
        # originals untouched (frozen dataclass semantics)
        assert problem.energy_budget_j == pytest.approx(5.0)
        assert problem.alpha == pytest.approx(1.0)


class TestLPLowering:
    def test_reduced_lp_shapes(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        lp = problem.to_reduced_lp()
        assert lp.num_variables == 5
        assert lp.num_inequalities == 2
        assert lp.num_equalities == 0
        assert lp.variable_names == ["DP1", "DP2", "DP3", "DP4", "DP5"]
        assert np.all(lp.b_ub >= 0)

    def test_reduced_lp_rhs_values(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        lp = problem.to_reduced_lp()
        assert lp.b_ub[0] == pytest.approx(3600.0)
        assert lp.b_ub[1] == pytest.approx(5.0 - 0.18)

    def test_reduced_lp_objective_scaled_by_period(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0, alpha=1.0)
        lp = problem.to_reduced_lp()
        assert lp.objective[0] == pytest.approx(0.94 / 3600.0)

    def test_reduced_lp_infeasible_budget_raises(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=0.05)
        with pytest.raises(BudgetTooSmallError):
            problem.to_reduced_lp()

    def test_full_lp_shapes(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        lp = problem.to_full_lp()
        assert lp.num_variables == 6
        assert lp.num_equalities == 1
        assert lp.num_inequalities == 1
        assert lp.variable_names[-1] == "t_off"

    def test_full_lp_off_variable_has_zero_objective(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        lp = problem.to_full_lp()
        assert lp.objective[-1] == pytest.approx(0.0)

    def test_full_lp_energy_row_includes_off_power(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        lp = problem.to_full_lp()
        assert lp.a_ub[0, -1] == pytest.approx(OFF_STATE_POWER_W)


class TestAllocationPackaging:
    def test_allocation_from_times_fills_off_time(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        allocation = problem.allocation_from_times([0.0, 0.0, 0.0, 1000.0, 2000.0])
        assert allocation.off_time_s == pytest.approx(600.0)
        assert allocation.budget_j == pytest.approx(5.0)

    def test_allocation_from_times_clips_negative_roundoff(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        allocation = problem.allocation_from_times([-1e-12, 0.0, 0.0, 0.0, 3600.0])
        assert allocation.times_s[0] == 0.0

    def test_allocation_from_times_rescales_tiny_overshoot(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=20.0)
        overshoot = 3600.0 * (1 + 1e-10)
        allocation = problem.allocation_from_times([overshoot, 0.0, 0.0, 0.0, 0.0])
        assert allocation.active_time_s <= 3600.0 + 1e-6

    def test_allocation_from_times_rejects_large_overshoot(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=20.0)
        with pytest.raises(ValueError):
            problem.allocation_from_times([4000.0, 0.0, 0.0, 0.0, 0.0])

    def test_allocation_from_times_wrong_length(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        with pytest.raises(ValueError):
            problem.allocation_from_times([1.0, 2.0])

    def test_all_off_allocation(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=0.05)
        allocation = problem.all_off_allocation()
        assert allocation.active_time_s == 0.0
        assert not allocation.budget_feasible


class TestStaticAllocation:
    def test_dp1_partial_activity_at_mid_budget(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        allocation = static_allocation(problem, "DP1")
        expected_active = (5.0 - 0.18) / (2.76e-3 - OFF_STATE_POWER_W)
        assert allocation.time_for("DP1") == pytest.approx(expected_active, rel=1e-6)
        assert allocation.energy_j == pytest.approx(5.0, rel=1e-6)

    def test_dp5_fully_active_above_saturation(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=6.0)
        allocation = static_allocation(problem, "DP5")
        assert allocation.active_time_s == pytest.approx(3600.0)
        assert allocation.energy_j <= 6.0 + 1e-9

    def test_static_below_floor_stays_off(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=0.1)
        allocation = static_allocation(problem, "DP1")
        assert allocation.active_time_s == 0.0
        assert not allocation.budget_feasible

    def test_unknown_name_raises(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        with pytest.raises(KeyError):
            static_allocation(problem, "DP9")

    def test_static_allocation_never_exceeds_budget(self, table2_points):
        for budget in np.linspace(0.2, 12.0, 25):
            problem = ReapProblem(tuple(table2_points), energy_budget_j=float(budget))
            for dp in table2_points:
                allocation = static_allocation(problem, dp.name)
                assert allocation.energy_j <= budget + 1e-9
