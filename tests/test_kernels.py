"""Equivalence suite for the accelerated kernels (repro.core.kernels).

The ``compiled`` and ``float32`` backends must agree with the ``numpy``
float64 reference at their documented tolerances across randomly generated
problems:

* ``solve_arrays`` via the value hull: objectives/energies to 1e-9
  (compiled) and 1e-4 (float32, times to ``period * 1e-6``);
* the ``BatteryScan`` grant/settle recurrence: bit-exact for the scalar
  fallback, 1e-4 for the wide-fleet float32 path;
* the MPC window projection: identical masks and budgets within the grid
  refinement's final cell;
* the Numba-less container must fall back gracefully (``None`` from the
  kernels, reference results from the engines) rather than raise;
* sampled-mode campaigns must replay the identical RNG stream under the
  compiled backend (budget parity implies window-count parity).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.batch import BatchAllocator, StackedConsumptionCurves
from repro.core.design_point import DesignPoint
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.energy.fleet import BatteryScan
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario
from repro.planning import MpcPlanner, PlanBattery
from repro.simulation.device import DeviceConfig
from repro.simulation.fleet import CampaignConfig
from repro.simulation.policies import ReapPolicy, default_policy_suite
from repro.simulation.simulator import HarvestingCampaign

OFF_FLOOR_J = OFF_STATE_POWER_W * ACTIVITY_PERIOD_S

#: Documented agreement contracts (see repro.core.kernels).
COMPILED_ATOL = 1e-9
FLOAT32_ATOL = 1e-4
FLOAT32_TIME_ATOL = ACTIVITY_PERIOD_S * 1e-6


def design_point_lists(min_size=1, max_size=6):
    """Random design-point sets that out-draw the off state (hull exists)."""
    point = st.tuples(
        st.floats(min_value=0.05, max_value=1.0),                  # accuracy
        st.floats(min_value=OFF_STATE_POWER_W * 2, max_value=5e-3),  # power
    )
    return st.lists(point, min_size=min_size, max_size=max_size).map(
        lambda pairs: [
            DesignPoint(name=f"P{i}", accuracy=a, power_w=p)
            for i, (a, p) in enumerate(pairs)
        ]
    )


budget_lists = st.lists(
    st.floats(min_value=0.0, max_value=25.0), min_size=1, max_size=24
)
alphas = st.floats(min_value=0.0, max_value=8.0)


def _engines(points, **kwargs):
    return {
        backend: BatchAllocator(points, backend=backend, **kwargs)
        for backend in kernels.BACKENDS
    }


# ---------------------------------------------------------------------------
# Backend plumbing and the Numba-less fallback
# ---------------------------------------------------------------------------

class TestBackendPlumbing:
    def test_validate_backend_accepts_the_registry(self):
        for backend in kernels.BACKENDS:
            assert kernels.validate_backend(backend) == backend
        with pytest.raises(ValueError, match="backend"):
            kernels.validate_backend("cuda")

    def test_engines_reject_unknown_backends(self, table2_points):
        with pytest.raises(ValueError, match="backend"):
            BatchAllocator(table2_points, backend="fortran")
        with pytest.raises(ValueError, match="backend"):
            BatteryScan(2, backend="fortran")

    def test_numba_absent_is_not_ready(self):
        # The container image does not ship Numba; the compiled backend
        # must still construct and solve (via the fallbacks) without it.
        if kernels.HAVE_NUMBA:  # pragma: no cover - optional-deps CI job
            assert kernels.numba_ready() or True
        else:
            assert not kernels.numba_ready()

    def test_backend_suffixes_the_engine_key(self, table2_points):
        base = BatchAllocator(table2_points).engine_key()
        assert len(base) == 3  # the historical key is preserved
        compiled = BatchAllocator(table2_points, backend="compiled").engine_key()
        assert compiled == base + ("compiled",)
        f32 = BatchAllocator(table2_points, backend="float32").engine_key()
        assert f32 == base + ("float32",)

    def test_degenerate_sets_have_no_hull(self):
        # A design point cheaper than the off state voids the hull; the
        # engine must fall back to the reference enumeration, exactly.
        points = (
            DesignPoint(name="CHEAP", accuracy=0.4, power_w=OFF_STATE_POWER_W / 2),
            DesignPoint(name="HOT", accuracy=0.9, power_w=3e-3),
        )
        assert kernels.build_solve_tables(
            np.array([dp.power_w for dp in points]),
            np.array([dp.accuracy for dp in points]),
            1.0, ACTIVITY_PERIOD_S, OFF_STATE_POWER_W,
        ) is None
        budgets = np.linspace(0.0, 12.0, 50)
        reference = BatchAllocator(points).solve_arrays(budgets, alpha=1.0)
        fast = BatchAllocator(points, backend="compiled").solve_arrays(
            budgets, alpha=1.0
        )
        np.testing.assert_array_equal(fast.times_s, reference.times_s)
        np.testing.assert_array_equal(fast.objective, reference.objective)


# ---------------------------------------------------------------------------
# Kernel 1: solve_arrays via the value hull
# ---------------------------------------------------------------------------

def _assert_internally_consistent(arrays, engine, budgets, atol):
    """The fast result must be a *feasible, self-consistent* allocation:
    its reported figures must follow from its own times, and its energy
    must respect the budget.  (At exactly tied optima the backends may
    legitimately report different optimal vertices, so cross-backend
    equality is asserted on the objective, not on the times.)"""
    times = arrays.times_s
    assert np.all(times >= -atol)
    active = times.sum(axis=1)
    # Round-off on the period scale: float32 can overshoot T by ~T * eps.
    assert np.all(active <= engine.period_s * (1 + atol))
    powers = np.array([dp.power_w for dp in engine.design_points])
    accuracies = np.array([dp.accuracy for dp in engine.design_points])
    energy = times @ powers + engine.off_power_w * (engine.period_s - active)
    np.testing.assert_allclose(arrays.energy_j, energy, rtol=1e-6, atol=atol)
    weights = accuracies ** arrays.alpha
    np.testing.assert_allclose(
        arrays.objective, (times @ weights) / engine.period_s,
        rtol=1e-6, atol=atol,
    )
    budgets = np.atleast_1d(np.asarray(budgets, dtype=float))
    feasible = arrays.feasible
    scale = np.maximum(1.0, budgets[feasible])
    assert np.all(arrays.energy_j[feasible] <= budgets[feasible] + atol * scale)


class TestHullSolveEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(points=design_point_lists(), budgets=budget_lists, alpha=alphas)
    def test_compiled_matches_reference(self, points, budgets, alpha):
        engines = _engines(points)
        reference = engines["numpy"].solve_arrays(budgets, alpha=alpha)
        fast = engines["compiled"].solve_arrays(budgets, alpha=alpha)
        np.testing.assert_array_equal(fast.feasible, reference.feasible)
        np.testing.assert_allclose(
            fast.objective, reference.objective, rtol=0, atol=COMPILED_ATOL
        )
        _assert_internally_consistent(
            fast, engines["compiled"], budgets, COMPILED_ATOL
        )

    @settings(max_examples=60, deadline=None)
    @given(points=design_point_lists(), budgets=budget_lists, alpha=alphas)
    def test_float32_matches_reference(self, points, budgets, alpha):
        engines = _engines(points)
        reference = engines["numpy"].solve_arrays(budgets, alpha=alpha)
        fast = engines["float32"].solve_arrays(budgets, alpha=alpha)
        np.testing.assert_array_equal(fast.feasible, reference.feasible)
        np.testing.assert_allclose(
            fast.objective, reference.objective,
            rtol=FLOAT32_ATOL, atol=FLOAT32_ATOL,
        )
        _assert_internally_consistent(
            fast, engines["float32"], budgets, FLOAT32_ATOL
        )
        assert fast.times_s.dtype == np.float64  # results stay float64 out

    def test_full_arrays_agree_on_table2(self, table2_points):
        # The paper's design points are strictly separated in accuracy and
        # power, so the optimal vertex is unique everywhere except the
        # measure-zero kink set: every output array must agree, not just
        # the objective.
        engines = _engines(table2_points)
        budgets = np.linspace(0.0, 30.0, 400)
        for alpha in (0.5, 1.0, 2.0, 4.0):
            reference = engines["numpy"].solve_arrays(budgets, alpha=alpha)
            for backend, atol, time_atol in (
                ("compiled", COMPILED_ATOL, COMPILED_ATOL * ACTIVITY_PERIOD_S),
                ("float32", FLOAT32_ATOL, FLOAT32_TIME_ATOL),
            ):
                fast = engines[backend].solve_arrays(budgets, alpha=alpha)
                np.testing.assert_array_equal(fast.feasible, reference.feasible)
                np.testing.assert_allclose(
                    fast.objective, reference.objective, rtol=atol, atol=atol
                )
                np.testing.assert_allclose(
                    fast.energy_j, reference.energy_j, rtol=atol, atol=atol
                )
                np.testing.assert_allclose(
                    fast.expected_accuracy, reference.expected_accuracy,
                    rtol=atol, atol=atol,
                )
                np.testing.assert_allclose(
                    fast.times_s, reference.times_s, rtol=0, atol=time_atol
                )

    def test_tied_optima_may_pick_the_cheaper_vertex(self):
        # Two equal-value vertices (equal accuracy) are both optimal; the
        # hull keeps the cheaper one while the reference argmax keeps the
        # first-listed.  Objectives must agree regardless, and the fast
        # path must never spend more than the reference.
        points = (
            DesignPoint(name="HOT", accuracy=0.9, power_w=4.0e-3),
            DesignPoint(name="COOL", accuracy=0.9, power_w=3.0e-3),
        )
        budgets = np.linspace(0.0, 20.0, 100)
        reference = BatchAllocator(points).solve_arrays(budgets, alpha=1.0)
        fast = BatchAllocator(points, backend="compiled").solve_arrays(
            budgets, alpha=1.0
        )
        np.testing.assert_allclose(
            fast.objective, reference.objective, rtol=0, atol=COMPILED_ATOL
        )
        assert np.all(fast.energy_j <= reference.energy_j + COMPILED_ATOL)

    @settings(max_examples=40, deadline=None)
    @given(points=design_point_lists(min_size=2), alpha=alphas)
    def test_infeasible_rows_report_the_off_floor(self, points, alpha):
        budgets = np.array([0.0, OFF_FLOOR_J / 2, OFF_FLOOR_J])
        for backend, engine in _engines(points).items():
            arrays = engine.solve_arrays(budgets, alpha=alpha)
            assert not arrays.feasible[0]
            assert not arrays.feasible[1]
            assert arrays.feasible[2]
            np.testing.assert_allclose(
                arrays.energy_j[:2], OFF_FLOOR_J, rtol=0,
                atol=FLOAT32_ATOL if backend == "float32" else COMPILED_ATOL,
            )
            np.testing.assert_array_equal(arrays.times_s[:2], 0.0)

    def test_hull_vertices_are_bit_equal(self, table2_points):
        # At the hull's own vertices (the pure-DP budgets) the blend
        # degenerates to one point: compiled and reference coincide exactly.
        engines = _engines(table2_points)
        vertex_budgets = [dp.power_w * ACTIVITY_PERIOD_S for dp in table2_points]
        reference = engines["numpy"].solve_arrays(vertex_budgets, alpha=1.0)
        fast = engines["compiled"].solve_arrays(vertex_budgets, alpha=1.0)
        np.testing.assert_allclose(
            fast.objective, reference.objective, rtol=0, atol=1e-12
        )


# ---------------------------------------------------------------------------
# Kernel 2: the BatteryScan recurrence
# ---------------------------------------------------------------------------

def _stacked_curves(points, num_devices, alpha=1.0):
    engine = BatchAllocator(points)
    curve = engine.consumption_curve(alpha=alpha)
    return StackedConsumptionCurves([curve] * num_devices)


def _random_harvest(rng, num_periods, num_devices):
    return rng.uniform(0.0, 12.0, size=(num_periods, num_devices))


class TestBatteryScanEquivalence:
    @pytest.mark.parametrize("backend", ["compiled", "float32"])
    def test_narrow_fleet_scalar_path_is_bit_exact(self, table2_points, backend):
        # D <= 24 runs the scalar recurrence on both fast backends: the
        # arithmetic is the same Python-float sequence as the reference's
        # vector ops, so the trajectories match bit for bit.
        rng = np.random.default_rng(42)
        curves = _stacked_curves(table2_points, 8)
        harvest = _random_harvest(rng, 72, 8)
        reference = BatteryScan(8, capacity_j=60.0).run(harvest, curves)
        fast = BatteryScan(8, capacity_j=60.0, backend=backend).run(
            harvest, curves
        )
        np.testing.assert_array_equal(fast.budgets_j, reference.budgets_j)
        np.testing.assert_array_equal(fast.consumed_j, reference.consumed_j)
        np.testing.assert_array_equal(fast.charge_j, reference.charge_j)

    def test_wide_fleet_float32_is_close(self, table2_points):
        rng = np.random.default_rng(7)
        num_devices = 64
        curves = _stacked_curves(table2_points, num_devices)
        harvest = _random_harvest(rng, 48, num_devices)
        reference = BatteryScan(num_devices).run(harvest, curves)
        fast = BatteryScan(num_devices, backend="float32").run(harvest, curves)
        np.testing.assert_allclose(
            fast.budgets_j, reference.budgets_j,
            rtol=FLOAT32_ATOL, atol=FLOAT32_ATOL,
        )
        np.testing.assert_allclose(
            fast.charge_j, reference.charge_j,
            rtol=FLOAT32_ATOL, atol=1e-2,  # the recurrence accumulates
        )

    @pytest.mark.skipif(kernels.numba_ready(), reason="needs the numba-less fallback")
    def test_wide_compiled_fleet_without_numba_falls_back(self, table2_points):
        # Above the scalar crossover with no jit available, the kernel
        # declines (None) and BatteryScan.run silently takes the reference
        # loop -- exact equality, no errors.
        num_devices = 40
        curves = _stacked_curves(table2_points, num_devices)
        tables = curves.fused_tables()
        assert tables is not None
        scan = BatteryScan(num_devices, backend="compiled")
        harvest = _random_harvest(np.random.default_rng(3), 24, num_devices)
        assert kernels.battery_scan(
            harvest, scan.initial_charge_j, scan.capacity_j,
            scan.target_soc * scan.capacity_j, scan.max_draw_j,
            scan.min_budget_j, scan.charge_efficiency,
            scan.discharge_efficiency, tables, "compiled",
        ) is None
        reference = BatteryScan(num_devices).run(harvest, curves)
        fast = scan.run(harvest, curves)
        np.testing.assert_array_equal(fast.budgets_j, reference.budgets_j)

    def test_heterogeneous_fleets_have_no_fused_tables(self, table2_points):
        engine = BatchAllocator(table2_points)
        mixed = StackedConsumptionCurves([
            engine.consumption_curve(alpha=1.0),
            engine.static_consumption_curve("DP1", alpha=2.0),
        ])
        # Different grids -> no single fused table -> reference loop.
        if mixed.fused_tables() is not None:
            pytest.skip("curves happen to share one grid")
        harvest = _random_harvest(np.random.default_rng(5), 24, 2)
        reference = BatteryScan(2).run(harvest, mixed)
        fast = BatteryScan(2, backend="compiled").run(harvest, mixed)
        np.testing.assert_array_equal(fast.budgets_j, reference.budgets_j)


# ---------------------------------------------------------------------------
# Kernel 3: the MPC window projection
# ---------------------------------------------------------------------------

def _plan_battery(num_devices, capacity=60.0, charge=20.0):
    scan = BatteryScan(num_devices, capacity_j=capacity, initial_charge_j=charge)
    return PlanBattery.from_scan(scan), np.full(num_devices, float(charge))


class TestMpcEquivalence:
    def test_small_grids_decline_without_numba(self, table2_points):
        if kernels.numba_ready():  # pragma: no cover - optional-deps CI job
            pytest.skip("jit accepts any grid size")
        curves = _stacked_curves(table2_points, 2)
        tables = curves.fused_tables()
        battery, charge = _plan_battery(2)
        budgets = np.full((16, 2), 4.0)
        assert budgets.size < kernels._MPC_FUSED_MIN_ELEMENTS
        assert kernels.mpc_sustainable(
            budgets, np.full((4, 2), 3.0), charge,
            battery.charge_efficiency, battery.discharge_efficiency,
            1e-9, tables, "compiled",
        ) is None

    @pytest.mark.parametrize("backend", ["compiled", "float32"])
    def test_wide_mask_matches_reference(self, table2_points, backend):
        rng = np.random.default_rng(11)
        num_devices = 300  # 16 candidates x 300 devices clears the gate
        curves = _stacked_curves(table2_points, num_devices)
        battery, charge = _plan_battery(num_devices, charge=15.0)
        planner_ref = MpcPlanner(6, max_budget_j=30.0)
        planner_fast = MpcPlanner(6, max_budget_j=30.0, backend=backend)
        window = rng.uniform(0.0, 10.0, size=(6, num_devices))
        budgets = np.linspace(OFF_FLOOR_J, 30.0, 16)[:, None] * np.ones(
            (1, num_devices)
        )
        assert budgets.size >= kernels._MPC_FUSED_MIN_ELEMENTS
        mask_ref = planner_ref.sustainable(budgets, window, charge, battery, curves)
        mask_fast = planner_fast.sustainable(budgets, window, charge, battery, curves)
        if backend == "compiled":
            np.testing.assert_array_equal(mask_fast, mask_ref)
        else:
            # float32 round-off may flip razor-edge rows; the disagreement
            # set must be tiny and confined to near-boundary candidates.
            assert np.mean(mask_fast != mask_ref) < 0.01

    @pytest.mark.parametrize("backend", ["compiled", "float32"])
    def test_step_budgets_agree_within_a_refinement_cell(
        self, table2_points, backend
    ):
        rng = np.random.default_rng(13)
        num_devices = 300
        curves = _stacked_curves(table2_points, num_devices)
        battery, charge = _plan_battery(num_devices, charge=25.0)
        ceiling = 30.0
        passes, candidates = 3, 16
        planner_ref = MpcPlanner(
            5, max_budget_j=ceiling, passes=passes, candidates=candidates
        )
        planner_fast = MpcPlanner(
            5, max_budget_j=ceiling, passes=passes, candidates=candidates,
            backend=backend,
        )
        window = rng.uniform(0.0, 8.0, size=(5, num_devices))
        reference = planner_ref.step_budgets(window, charge, battery, curves)
        fast = planner_fast.step_budgets(window, charge, battery, curves)
        # The grid refinement's final bracket width bounds any disagreement:
        # five cells of slack absorbs float32 boundary flips.
        cell = (ceiling - OFF_FLOOR_J) / float((candidates - 1) ** passes)
        tol = COMPILED_ATOL if backend == "compiled" else 5.0 * cell
        np.testing.assert_allclose(fast, reference, rtol=0, atol=max(tol, 1e-9))


# ---------------------------------------------------------------------------
# End-to-end: campaigns under a non-default backend
# ---------------------------------------------------------------------------

def _campaign_config(backend, recognition_mode="expected", seed=9):
    return CampaignConfig(
        use_battery=True,
        battery_capacity_j=80.0,
        backend=backend,
        device=DeviceConfig(recognition_mode=recognition_mode, seed=seed),
    )


class TestCampaignBackendEquivalence:
    @pytest.mark.parametrize("recognition_mode", ["expected", "sampled"])
    def test_compiled_campaign_matches_numpy(self, table2_points, recognition_mode):
        # Bit-equal budgets mean the sampled-mode Bernoulli draws consume
        # the identical RNG stream: window counts must match exactly.
        trace = SyntheticSolarModel(seed=21).generate_days(60, 3)
        scenario = HarvestScenario()
        results = {}
        for backend in ("numpy", "compiled"):
            campaign = HarvestingCampaign(
                scenario,
                _campaign_config(backend, recognition_mode),
                engine="fleet",
            )
            results[backend] = campaign.run_many(
                default_policy_suite(table2_points, alpha=2.0, backend=backend),
                trace,
            )
        assert list(results["numpy"]) == list(results["compiled"])
        for name in results["numpy"]:
            ref, fast = results["numpy"][name], results["compiled"][name]
            assert ref.columns is not None and fast.columns is not None
            np.testing.assert_allclose(
                fast.columns.energy_budget_j, ref.columns.energy_budget_j,
                rtol=0, atol=COMPILED_ATOL,
            )
            np.testing.assert_allclose(
                fast.columns.objective_value, ref.columns.objective_value,
                rtol=0, atol=COMPILED_ATOL,
            )
            np.testing.assert_array_equal(
                fast.columns.windows_correct, ref.columns.windows_correct
            )

    def test_float32_campaign_tracks_numpy(self, table2_points):
        trace = SyntheticSolarModel(seed=23).generate_days(100, 2)
        scenario = HarvestScenario()
        results = {}
        for backend in ("numpy", "float32"):
            campaign = HarvestingCampaign(
                scenario, _campaign_config(backend), engine="fleet"
            )
            results[backend] = campaign.run(
                ReapPolicy(table2_points, alpha=2.0, backend=backend), trace
            )
        ref, fast = results["numpy"], results["float32"]
        np.testing.assert_allclose(
            fast.columns.energy_budget_j, ref.columns.energy_budget_j,
            rtol=FLOAT32_ATOL, atol=FLOAT32_ATOL,
        )
        np.testing.assert_allclose(
            fast.columns.objective_value, ref.columns.objective_value,
            rtol=FLOAT32_ATOL, atol=FLOAT32_ATOL,
        )
