"""Tests for sensor windows, the dataset container and study synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.har.activities import ALL_ACTIVITIES, Activity
from repro.har.sensors import SensorSpec
from repro.har.synthesis import (
    DEFAULT_STUDY_MIX,
    StudyConfig,
    StudyGenerator,
    generate_study_dataset,
)
from repro.har.windows import DatasetSplit, HARDataset, SensorWindow


def _window(activity=Activity.SIT, user_id=0, n=160):
    rng = np.random.default_rng(0)
    return SensorWindow(
        accel=rng.normal(size=(n, 3)),
        stretch=np.abs(rng.normal(size=n)),
        activity=activity,
        user_id=user_id,
    )


class TestSensorWindow:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SensorWindow(
                accel=np.zeros((10, 2)), stretch=np.zeros(10),
                activity=Activity.SIT, user_id=0,
            )
        with pytest.raises(ValueError):
            SensorWindow(
                accel=np.zeros((10, 3)), stretch=np.zeros(12),
                activity=Activity.SIT, user_id=0,
            )
        with pytest.raises(ValueError):
            SensorWindow(
                accel=np.zeros((10, 3)), stretch=np.zeros((10, 1)),
                activity=Activity.SIT, user_id=0,
            )

    def test_basic_properties(self):
        window = _window()
        assert window.num_samples == 160
        assert window.duration_s == pytest.approx(1.6)

    def test_accel_axes_selection(self):
        window = _window()
        y_only = window.accel_axes(["y"])
        assert y_only.shape == (160, 1)
        np.testing.assert_allclose(y_only[:, 0], window.accel[:, 1])
        xz = window.accel_axes(("x", "z"))
        assert xz.shape == (160, 2)

    def test_accel_axes_unknown_axis(self):
        with pytest.raises(ValueError):
            _window().accel_axes(["w"])

    def test_truncated_zeroes_tail_but_keeps_stretch(self):
        window = _window()
        truncated = window.truncated(0.5)
        keep = int(round(160 * 0.5))
        np.testing.assert_allclose(truncated.accel[:keep], window.accel[:keep])
        assert np.all(truncated.accel[keep:] == 0.0)
        np.testing.assert_allclose(truncated.stretch, window.stretch)

    def test_truncated_fraction_bounds(self):
        with pytest.raises(ValueError):
            _window().truncated(0.0)
        with pytest.raises(ValueError):
            _window().truncated(1.5)


class TestHARDataset:
    @pytest.fixture
    def dataset(self):
        windows = []
        for user in range(3):
            for activity in ALL_ACTIVITIES:
                for _ in range(6):
                    windows.append(_window(activity, user, n=32))
        return HARDataset(windows)

    def test_len_and_iteration(self, dataset):
        assert len(dataset) == 3 * 7 * 6
        assert sum(1 for _ in dataset) == len(dataset)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            HARDataset([])

    def test_labels_and_users(self, dataset):
        assert dataset.labels.shape == (len(dataset),)
        assert dataset.num_users == 3
        assert set(dataset.user_ids) == {0, 1, 2}

    def test_class_distribution(self, dataset):
        distribution = dataset.class_distribution()
        assert all(count == 18 for count in distribution.values())

    def test_windows_for_user_and_activity(self, dataset):
        user_windows = dataset.windows_for_user(1)
        assert len(user_windows) == 7 * 6
        walk_windows = dataset.windows_for_activity(Activity.WALK)
        assert len(walk_windows) == 3 * 6
        assert all(w.activity is Activity.WALK for w in walk_windows)

    def test_split_sizes_and_disjointness(self, dataset):
        split = dataset.split(seed=3)
        n_train, n_val, n_test = split.sizes
        assert n_train + n_val + n_test == len(dataset)
        assert n_train > n_val >= n_test > 0
        all_indices = np.concatenate(
            [split.train_indices, split.validation_indices, split.test_indices]
        )
        assert len(np.unique(all_indices)) == len(dataset)

    def test_split_is_stratified(self, dataset):
        split = dataset.split(seed=3)
        train_labels = dataset.labels[split.train_indices]
        # Every class appears in the training partition.
        assert set(train_labels) == set(int(a) for a in ALL_ACTIVITIES)

    def test_split_reproducible(self, dataset):
        a = dataset.split(seed=9)
        b = dataset.split(seed=9)
        np.testing.assert_array_equal(a.train_indices, b.train_indices)

    def test_split_fraction_validation(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(train_fraction=0.9, validation_fraction=0.2)
        with pytest.raises(ValueError):
            dataset.split(train_fraction=0.0)

    def test_subset(self, dataset):
        subset = dataset.subset([0, 1, 2])
        assert len(subset) == 3

    def test_split_partitions_do_not_overlap_constructor_check(self):
        with pytest.raises(ValueError):
            DatasetSplit(
                train_indices=np.array([0, 1]),
                validation_indices=np.array([1]),
                test_indices=np.array([2]),
            )


class TestStudyGenerator:
    def test_default_config_matches_paper_scale(self):
        config = StudyConfig()
        assert config.num_users == 14
        assert config.num_windows == 3553

    def test_small_dataset_generation(self, small_dataset):
        assert len(small_dataset) == 420
        assert small_dataset.num_users == 6
        distribution = small_dataset.class_distribution()
        assert all(count > 0 for count in distribution.values())

    def test_window_count_exact(self):
        dataset = generate_study_dataset(num_users=3, num_windows=101, seed=1)
        assert len(dataset) == 101

    def test_generation_reproducible(self):
        a = generate_study_dataset(num_users=3, num_windows=70, seed=5)
        b = generate_study_dataset(num_users=3, num_windows=70, seed=5)
        np.testing.assert_allclose(a[0].accel, b[0].accel)
        assert list(a.labels) == list(b.labels)

    def test_different_seeds_give_different_data(self):
        a = generate_study_dataset(num_users=3, num_windows=70, seed=5)
        b = generate_study_dataset(num_users=3, num_windows=70, seed=6)
        assert not np.allclose(a[0].accel, b[0].accel)

    def test_class_mix_roughly_follows_study_mix(self):
        dataset = generate_study_dataset(num_users=4, num_windows=700, seed=2)
        distribution = dataset.class_distribution()
        for activity, share in DEFAULT_STUDY_MIX.items():
            observed = distribution[activity] / len(dataset)
            assert observed == pytest.approx(share, abs=0.03)

    def test_every_user_contributes(self):
        dataset = generate_study_dataset(num_users=5, num_windows=200, seed=3)
        assert dataset.num_users == 5

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            StudyConfig(num_users=0)
        with pytest.raises(ValueError):
            StudyConfig(num_windows=3)

    def test_activity_stream_generation(self):
        generator = StudyGenerator(StudyConfig(num_users=2, num_windows=50, seed=4))
        stream = generator.generate_activity_stream(500, seed=10)
        assert len(stream) == 500
        assert all(isinstance(a, Activity) for a in stream)

    def test_custom_sensor_spec_propagates(self):
        spec = SensorSpec(window_s=0.8, sampling_hz=50)
        dataset = generate_study_dataset(
            num_users=2, num_windows=30, seed=1, sensor_spec=spec
        )
        assert dataset[0].num_samples == 40
