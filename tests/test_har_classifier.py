"""Tests for the NumPy MLP classifier, trainer and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.har.activities import Activity, NUM_CLASSES
from repro.har.classifier.metrics import (
    accuracy_score,
    confusion_matrix,
    expected_calibration_gap,
    macro_f1,
    per_class_recall,
)
from repro.har.classifier.nn import (
    MLPClassifier,
    MLPConfig,
    cross_entropy,
    one_hot,
    softmax,
)
from repro.har.classifier.train import Trainer, TrainingConfig


class TestActivationHelpers:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(10, 7))
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(probabilities > 0)

    def test_softmax_is_shift_invariant(self, rng):
        logits = rng.normal(size=(4, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), atol=1e-9)

    def test_softmax_handles_large_values(self):
        probabilities = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probabilities).all()
        assert probabilities[0, 0] == pytest.approx(1.0)

    def test_one_hot_encoding(self):
        encoded = one_hot(np.array([0, 2, 6]), num_classes=7)
        assert encoded.shape == (3, 7)
        assert encoded[1, 2] == 1.0
        assert encoded.sum() == 3.0

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([7]), num_classes=7)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        probabilities = one_hot(np.array([0, 1]), num_classes=3) * 0.999 + 1e-4
        loss = cross_entropy(probabilities, np.array([0, 1]))
        assert loss < 0.01

    def test_cross_entropy_uniform_prediction(self):
        probabilities = np.full((4, 5), 0.2)
        loss = cross_entropy(probabilities, np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(5), rel=1e-6)

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(np.full((3, 2), 0.5), np.array([0, 1]))


class TestMLPStructure:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MLPConfig(input_dim=0)
        with pytest.raises(ValueError):
            MLPConfig(input_dim=4, num_classes=1)
        with pytest.raises(ValueError):
            MLPConfig(input_dim=4, hidden_layers=(0,))

    def test_structure_string(self):
        config = MLPConfig(input_dim=4, hidden_layers=(12,), num_classes=7)
        assert config.structure == "4x12x7"
        assert MLPConfig(input_dim=4, hidden_layers=(), num_classes=7).structure == "4x7"

    def test_parameter_count(self):
        model = MLPClassifier(MLPConfig(input_dim=4, hidden_layers=(12,), num_classes=7))
        expected = 4 * 12 + 12 + 12 * 7 + 7
        assert model.num_parameters() == expected
        assert model.num_multiply_accumulates() == 4 * 12 + 12 * 7

    def test_forward_shapes(self, rng):
        model = MLPClassifier(MLPConfig(input_dim=5, hidden_layers=(8,)))
        inputs = rng.normal(size=(11, 5))
        probabilities = model.predict_proba(inputs)
        assert probabilities.shape == (11, NUM_CLASSES)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)
        predictions = model.predict(inputs)
        assert predictions.shape == (11,)
        assert set(predictions) <= set(range(NUM_CLASSES))

    def test_forward_rejects_wrong_input_dim(self, rng):
        model = MLPClassifier(MLPConfig(input_dim=5))
        with pytest.raises(ValueError):
            model.predict(rng.normal(size=(3, 4)))

    def test_initialisation_reproducible(self):
        a = MLPClassifier(MLPConfig(input_dim=6, seed=3))
        b = MLPClassifier(MLPConfig(input_dim=6, seed=3))
        np.testing.assert_allclose(a.weights[0], b.weights[0])

    def test_parameter_roundtrip(self, rng):
        model = MLPClassifier(MLPConfig(input_dim=4, hidden_layers=(6,)))
        params = model.get_parameters()
        other = MLPClassifier(MLPConfig(input_dim=4, hidden_layers=(6,), seed=99))
        other.set_parameters(params)
        inputs = rng.normal(size=(5, 4))
        np.testing.assert_allclose(model.predict_proba(inputs), other.predict_proba(inputs))

    def test_set_parameters_shape_check(self):
        model = MLPClassifier(MLPConfig(input_dim=4, hidden_layers=(6,)))
        params = model.get_parameters()
        params["w0"] = np.zeros((3, 6))
        with pytest.raises(ValueError):
            model.set_parameters(params)


class TestGradients:
    def test_gradients_match_finite_differences(self, rng):
        """Analytic backprop gradients agree with numerical differentiation."""
        model = MLPClassifier(MLPConfig(input_dim=3, hidden_layers=(4,), num_classes=3, seed=1))
        inputs = rng.normal(size=(6, 3))
        labels = rng.integers(0, 3, size=6)
        weight_grads, bias_grads = model.gradients(inputs, labels)

        epsilon = 1e-6
        for layer in range(model.num_layers):
            flat_index = np.unravel_index(
                rng.integers(0, model.weights[layer].size), model.weights[layer].shape
            )
            original = model.weights[layer][flat_index]
            model.weights[layer][flat_index] = original + epsilon
            loss_plus = model.loss(inputs, labels)
            model.weights[layer][flat_index] = original - epsilon
            loss_minus = model.loss(inputs, labels)
            model.weights[layer][flat_index] = original
            numeric = (loss_plus - loss_minus) / (2 * epsilon)
            assert weight_grads[layer][flat_index] == pytest.approx(numeric, abs=1e-5)

    def test_gradients_include_l2_term(self, rng):
        model = MLPClassifier(MLPConfig(input_dim=3, hidden_layers=(4,), num_classes=3))
        inputs = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        plain, _ = model.gradients(inputs, labels, l2_penalty=0.0)
        regularised, _ = model.gradients(inputs, labels, l2_penalty=0.5)
        np.testing.assert_allclose(
            regularised[0], plain[0] + 0.5 * model.weights[0], atol=1e-12
        )


class TestTrainer:
    def _blob_data(self, rng, num_classes=3, per_class=60, dim=4):
        """Well-separated Gaussian blobs: easily learnable."""
        centers = rng.normal(scale=4.0, size=(num_classes, dim))
        features, labels = [], []
        for index, center in enumerate(centers):
            features.append(center + rng.normal(scale=0.5, size=(per_class, dim)))
            labels.extend([index] * per_class)
        return np.vstack(features), np.array(labels)

    def test_training_learns_separable_data(self, rng):
        features, labels = self._blob_data(rng)
        model = MLPClassifier(MLPConfig(input_dim=4, hidden_layers=(8,), num_classes=3))
        trainer = Trainer(TrainingConfig(max_epochs=40, patience=40, batch_size=16))
        history = trainer.fit(model, features, labels)
        assert history.num_epochs >= 1
        assert accuracy_score(labels, model.predict(features)) > 0.95
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_restores_best_parameters(self, rng):
        features, labels = self._blob_data(rng)
        validation_features, validation_labels = self._blob_data(rng)
        model = MLPClassifier(MLPConfig(input_dim=4, hidden_layers=(8,), num_classes=3))
        trainer = Trainer(TrainingConfig(max_epochs=60, patience=5))
        history = trainer.fit(
            model, features, labels, validation_features, validation_labels
        )
        assert history.best_epoch <= history.num_epochs - 1
        assert len(history.validation_accuracy) == history.num_epochs

    def test_training_is_deterministic_given_seeds(self, rng):
        features, labels = self._blob_data(rng)
        outcomes = []
        for _ in range(2):
            model = MLPClassifier(MLPConfig(input_dim=4, hidden_layers=(6,), num_classes=3, seed=2))
            Trainer(TrainingConfig(max_epochs=10, seed=4)).fit(model, features, labels)
            outcomes.append(model.predict_proba(features[:5]))
        np.testing.assert_allclose(outcomes[0], outcomes[1])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(max_epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(patience=0)

    def test_shape_mismatch_rejected(self, rng):
        model = MLPClassifier(MLPConfig(input_dim=4, num_classes=3))
        with pytest.raises(ValueError):
            Trainer(TrainingConfig(max_epochs=1)).fit(
                model, rng.normal(size=(10, 4)), np.zeros(9, dtype=int)
            )


class TestMetrics:
    def test_accuracy_basic(self):
        assert accuracy_score([0, 1, 2, 2], [0, 1, 1, 2]) == pytest.approx(0.75)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_confusion_matrix_totals(self):
        matrix = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], num_classes=3)
        assert matrix.sum() == 4
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert np.trace(matrix) == 3

    def test_per_class_recall(self):
        true = [int(Activity.SIT)] * 4 + [int(Activity.WALK)] * 4
        predicted = [int(Activity.SIT)] * 3 + [int(Activity.WALK)] + [int(Activity.WALK)] * 4
        recalls = per_class_recall(true, predicted)
        assert recalls[Activity.SIT] == pytest.approx(0.75)
        assert recalls[Activity.WALK] == pytest.approx(1.0)
        assert recalls[Activity.JUMP] == 0.0

    def test_macro_f1_perfect(self):
        labels = [0, 1, 2, 0, 1, 2]
        assert macro_f1(labels, labels) == pytest.approx(1.0)

    def test_macro_f1_ignores_empty_classes(self):
        value = macro_f1([0, 0, 1, 1], [0, 0, 1, 1])
        assert value == pytest.approx(1.0)

    def test_calibration_gap_range(self, rng):
        probabilities = softmax(rng.normal(size=(50, 4)))
        labels = rng.integers(0, 4, size=50)
        gap = expected_calibration_gap(probabilities, labels)
        assert 0.0 <= gap <= 1.0
