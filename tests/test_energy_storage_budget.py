"""Tests for the battery, harvesting circuit, accounting and budget layers."""

from __future__ import annotations

import pytest

from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.data.table2 import table2_design_points
from repro.energy.accounting import (
    HourlyEnergyBreakdown,
    hourly_breakdown_from_characterization,
    hourly_breakdown_from_design_point,
    off_state_energy_j,
)
from repro.energy.battery import Battery
from repro.energy.budget import HarvestFollowingAllocator, HorizonAverageAllocator
from repro.energy.harvester import HarvestingCircuit
from repro.energy.power_model import DesignPointEnergyModel
from repro.har.design_space import table2_specs
from repro.har.features.pipeline import FeatureExtractor


class TestAccounting:
    def test_dp1_hourly_total_close_to_9_9_joules(self):
        name, config = table2_specs()[0]
        characterization = DesignPointEnergyModel().characterize(
            config, FeatureExtractor(config.features).num_features
        )
        breakdown = hourly_breakdown_from_characterization(characterization)
        assert breakdown.total_j == pytest.approx(9.9, rel=0.05)

    def test_dp1_sensor_share_near_47_percent(self):
        name, config = table2_specs()[0]
        characterization = DesignPointEnergyModel().characterize(
            config, FeatureExtractor(config.features).num_features
        )
        breakdown = hourly_breakdown_from_characterization(characterization)
        sensor_share = breakdown.sensors_j / breakdown.total_j
        assert sensor_share == pytest.approx(0.47, abs=0.05)

    def test_fractions_sum_to_one(self):
        breakdown = HourlyEnergyBreakdown(1.0, 0.5, 0.2, 0.3, 1.0, 0.5)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_breakdown_from_published_design_point(self):
        dp1 = table2_design_points()[0]
        breakdown = hourly_breakdown_from_design_point(dp1)
        assert breakdown.total_j == pytest.approx(
            dp1.power_w * ACTIVITY_PERIOD_S, rel=0.02
        )
        assert breakdown.communication_j > 0

    def test_breakdown_requires_energy_data(self):
        from repro.core.design_point import DesignPoint

        bare = DesignPoint(name="bare", accuracy=0.9, power_w=1e-3)
        with pytest.raises(ValueError):
            hourly_breakdown_from_design_point(bare)

    def test_off_state_energy(self):
        assert off_state_energy_j(OFF_STATE_POWER_W) == pytest.approx(0.18)
        with pytest.raises(ValueError):
            off_state_energy_j(-1.0)
        with pytest.raises(ValueError):
            off_state_energy_j(1.0, period_s=0.0)

    def test_period_scaling(self):
        name, config = table2_specs()[0]
        characterization = DesignPointEnergyModel().characterize(
            config, FeatureExtractor(config.features).num_features
        )
        one_hour = hourly_breakdown_from_characterization(characterization, 3600.0)
        half_hour = hourly_breakdown_from_characterization(characterization, 1800.0)
        assert half_hour.total_j == pytest.approx(one_hour.total_j / 2)


class TestBattery:
    def test_initial_state_defaults_to_half_full(self):
        battery = Battery(capacity_j=100.0)
        assert battery.charge_j == pytest.approx(50.0)
        assert battery.state_of_charge == pytest.approx(0.5)

    def test_charge_respects_capacity(self):
        battery = Battery(capacity_j=10.0, initial_charge_j=9.0, charge_efficiency=1.0)
        wasted = battery.charge(5.0)
        assert battery.charge_j == pytest.approx(10.0)
        assert wasted == pytest.approx(4.0)

    def test_charge_efficiency_applied(self):
        battery = Battery(capacity_j=100.0, initial_charge_j=0.0, charge_efficiency=0.8)
        battery.charge(10.0)
        assert battery.charge_j == pytest.approx(8.0)

    def test_discharge_limited_by_available_energy(self):
        battery = Battery(capacity_j=10.0, initial_charge_j=2.0, discharge_efficiency=1.0)
        delivered = battery.discharge(5.0)
        assert delivered == pytest.approx(2.0)
        assert battery.charge_j == pytest.approx(0.0)

    def test_discharge_efficiency_applied(self):
        battery = Battery(capacity_j=10.0, initial_charge_j=10.0, discharge_efficiency=0.5)
        delivered = battery.discharge(4.0)
        assert delivered == pytest.approx(4.0)
        assert battery.charge_j == pytest.approx(2.0)

    def test_negative_amounts_rejected(self):
        battery = Battery(capacity_j=10.0)
        with pytest.raises(ValueError):
            battery.charge(-1.0)
        with pytest.raises(ValueError):
            battery.discharge(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Battery(capacity_j=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=10.0, initial_charge_j=20.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=10.0, charge_efficiency=0.0)

    def test_reset_restores_initial_charge(self):
        battery = Battery(capacity_j=10.0, initial_charge_j=6.0)
        battery.discharge(3.0)
        battery.reset()
        assert battery.charge_j == pytest.approx(6.0)
        assert len(battery.history) == 1

    def test_history_tracks_operations(self):
        battery = Battery(capacity_j=10.0)
        battery.charge(1.0)
        battery.discharge(1.0)
        assert len(battery.history) == 3


class TestHarvestingCircuit:
    def test_efficiency_applied(self):
        circuit = HarvestingCircuit(conversion_efficiency=0.8)
        assert circuit.harvested_energy_j(10.0) == pytest.approx(8.0)

    def test_quiescent_energy_matches_floor(self):
        circuit = HarvestingCircuit()
        assert circuit.quiescent_energy_j() == pytest.approx(0.18)

    def test_validation(self):
        with pytest.raises(ValueError):
            HarvestingCircuit(conversion_efficiency=0.0)
        with pytest.raises(ValueError):
            HarvestingCircuit(quiescent_power_w=-1.0)
        with pytest.raises(ValueError):
            HarvestingCircuit().harvested_energy_j(-1.0)


class TestHarvestFollowingAllocator:
    def test_budget_includes_harvest(self):
        battery = Battery(capacity_j=50.0, initial_charge_j=25.0)
        allocator = HarvestFollowingAllocator(battery)
        budget = allocator.grant(harvest_j=3.0)
        assert budget >= 3.0

    def test_surplus_battery_released(self):
        battery = Battery(capacity_j=50.0, initial_charge_j=45.0)
        allocator = HarvestFollowingAllocator(battery, target_soc=0.5, max_battery_draw_j=5.0)
        budget = allocator.grant(harvest_j=1.0)
        assert budget == pytest.approx(6.0)

    def test_floor_budget_when_battery_can_cover(self):
        battery = Battery(capacity_j=50.0, initial_charge_j=25.0)
        allocator = HarvestFollowingAllocator(battery, target_soc=0.9)
        budget = allocator.grant(harvest_j=0.0)
        assert budget >= allocator.min_budget_j - 1e-9

    def test_settle_banks_surplus_and_draws_deficit(self):
        battery = Battery(capacity_j=50.0, initial_charge_j=25.0,
                          charge_efficiency=1.0, discharge_efficiency=1.0)
        allocator = HarvestFollowingAllocator(battery)
        allocator.settle(harvest_j=5.0, consumed_j=2.0)
        assert battery.charge_j == pytest.approx(28.0)
        allocator.settle(harvest_j=0.0, consumed_j=3.0)
        assert battery.charge_j == pytest.approx(25.0)

    def test_allocate_trace_length(self):
        battery = Battery(capacity_j=50.0)
        allocator = HarvestFollowingAllocator(battery)
        budgets = allocator.allocate_trace([0.0, 1.0, 5.0, 2.0])
        assert len(budgets) == 4
        assert all(b >= 0 for b in budgets)

    def test_invalid_parameters(self):
        battery = Battery(capacity_j=10.0)
        with pytest.raises(ValueError):
            HarvestFollowingAllocator(battery, target_soc=1.5)
        with pytest.raises(ValueError):
            HarvestFollowingAllocator(battery).grant(-1.0)
        with pytest.raises(ValueError):
            HarvestFollowingAllocator(battery).settle(1.0, -2.0)


class TestHorizonAverageAllocator:
    def test_budgets_are_uniform_within_horizon(self):
        battery = Battery(capacity_j=10.0, initial_charge_j=0.0)
        allocator = HorizonAverageAllocator(battery, horizon_periods=4)
        budgets = allocator.allocate([0.0, 4.0, 8.0, 0.0])
        assert len(budgets) == 4
        assert len(set(round(b, 9) for b in budgets)) == 1
        assert budgets[0] == pytest.approx(3.0, rel=0.2)

    def test_minimum_budget_enforced(self):
        battery = Battery(capacity_j=10.0, initial_charge_j=0.0)
        allocator = HorizonAverageAllocator(battery, horizon_periods=2)
        budgets = allocator.allocate([0.0, 0.0])
        assert all(b >= allocator.min_budget_j for b in budgets)

    def test_negative_forecast_rejected(self):
        battery = Battery(capacity_j=10.0)
        with pytest.raises(ValueError):
            HorizonAverageAllocator(battery).allocate([-1.0])

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            HorizonAverageAllocator(Battery(capacity_j=10.0), horizon_periods=0)
