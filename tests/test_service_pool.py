"""Tests for the service worker pool (repro.service.pool).

Covers correctness of fanned solves (group slicing, batch_size reporting,
scalar agreement), async dispatch through the micro-batcher, per-worker
stats merging, shutdown semantics (pending futures cancelled, workers
joined, stats consistent after the drain) and campaign execution on the
pool's persistent process executor.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.core.allocator import ReapAllocator
from repro.data.table2 import table2_design_points
from repro.service.batcher import EngineRegistry, MicroBatcher
from repro.service.pool import WorkerPool
from repro.service.requests import AllocationRequest, CampaignRequest
from repro.service.server import AllocationService
from repro.simulation.fleet import FleetCampaign


@pytest.fixture(scope="module")
def points():
    return tuple(table2_design_points())


def scalar_solve(request: AllocationRequest, points):
    return ReapAllocator().solve(request.resolve(points).to_problem())


class TestWorkerPoolSolving:
    def test_matches_scalar_allocator_across_slices(self, points):
        with WorkerPool(workers=2, registry=EngineRegistry(points)) as pool:
            requests = [
                AllocationRequest(float(budget), alpha=alpha)
                for budget in np.linspace(0.2, 10.4, 40)
                for alpha in (1.0, 2.0)
            ]
            responses = pool.solve_batch(requests)
        assert len(responses) == len(requests)
        for request, response in zip(requests, responses):
            reference = scalar_solve(request, points)
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )

    def test_sliced_group_reports_logical_batch_size(self, points):
        # 64 same-engine requests on 2 workers slice into 2 x 32, but every
        # response must still report the logical group of 64.
        with WorkerPool(workers=2, registry=EngineRegistry(points)) as pool:
            requests = [
                AllocationRequest(float(b)) for b in np.linspace(0.2, 9.9, 64)
            ]
            responses = pool.solve_batch(requests)
            stats = pool.stats()
        assert all(response.batch_size == 64 for response in responses)
        assert stats["tasks"] == 2
        assert stats["requests"] == 64

    def test_small_groups_stay_whole(self, points):
        with WorkerPool(workers=4, registry=EngineRegistry(points)) as pool:
            requests = [AllocationRequest(float(b)) for b in (1.0, 2.0, 3.0)]
            pool.solve_batch(requests)
            assert pool.stats()["tasks"] == 1

    def test_single_worker_solves_inline(self, points):
        pool = WorkerPool(workers=1, registry=EngineRegistry(points))
        requests = [AllocationRequest(float(b)) for b in np.linspace(1, 9, 40)]
        responses = pool.solve_batch(requests)
        assert [r.batch_size for r in responses] == [40] * 40
        # Inline solves are recorded against the calling thread.
        stats = pool.stats()
        assert list(stats["per_worker"]) == [threading.current_thread().name]
        pool.shutdown()

    def test_async_variant_matches_sync(self, points):
        with WorkerPool(workers=2, registry=EngineRegistry(points)) as pool:
            requests = [
                AllocationRequest(float(b)) for b in np.linspace(0.5, 9.5, 48)
            ]
            sync_responses = pool.solve_batch(requests)
            async_responses = asyncio.run(pool.solve_batch_async(requests))
        assert [r.objective for r in async_responses] == [
            r.objective for r in sync_responses
        ]

    def test_empty_batch(self, points):
        with WorkerPool(workers=2, registry=EngineRegistry(points)) as pool:
            assert pool.solve_batch([]) == []
            assert asyncio.run(pool.solve_batch_async([])) == []

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="campaign_workers"):
            WorkerPool(workers=1, campaign_workers=0)
        with pytest.raises(ValueError, match="min_slice"):
            WorkerPool(workers=1, min_slice=0)


class TestWorkerPoolShutdown:
    def test_shutdown_cancels_pending_joins_workers_and_keeps_stats(
        self, points, monkeypatch
    ):
        import repro.service.pool as pool_module

        registry = EngineRegistry(points)
        # Two workers; one solve_batch over four engine groups (distinct
        # periods) submits four tasks atomically -- two start and block on
        # the gate, two stay queued and are eligible for cancellation.
        pool = WorkerPool(workers=2, registry=registry)
        real_solve_group = pool_module.solve_group
        running = threading.Semaphore(0)
        release = threading.Event()

        def slow_solve_group(engine, requests, batch_size=None):
            running.release()
            assert release.wait(timeout=10.0)
            return real_solve_group(engine, requests, batch_size)

        monkeypatch.setattr(pool_module, "solve_group", slow_solve_group)
        requests = [
            AllocationRequest(5.0, period_s=period)
            for period in (3600.0, 1800.0, 900.0, 450.0)
        ]
        outcome = {}

        def call():
            try:
                outcome["responses"] = pool.solve_batch(requests)
            except CancelledError:
                outcome["cancelled"] = True

        caller = threading.Thread(target=call)
        caller.start()
        # Both workers busy; the remaining two tasks are queued.
        assert running.acquire(timeout=10.0)
        assert running.acquire(timeout=10.0)
        pool.shutdown(wait=False, cancel_pending=True)
        release.set()
        caller.join(timeout=10.0)
        assert not caller.is_alive()
        pool.shutdown(wait=True)  # idempotent; joins the workers

        # The burst observed its queued tasks being cancelled.
        assert outcome == {"cancelled": True}
        # Workers joined: no engine-worker thread is still alive.
        assert not any(
            thread.name.startswith("engine-worker") and thread.is_alive()
            for thread in threading.enumerate()
        )
        # Stats consistent after the drain: exactly the two completed
        # tasks were recorded, nothing for the cancelled pair.
        stats = pool.stats()
        assert stats["tasks"] == 2
        assert stats["requests"] == 2
        assert pool.closed

    def test_submitting_after_shutdown_raises(self, points):
        pool = WorkerPool(workers=2, registry=EngineRegistry(points))
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.solve_batch([AllocationRequest(1.0)])
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run_campaign([], [], None)

    def test_shutdown_is_idempotent(self, points):
        pool = WorkerPool(workers=2, registry=EngineRegistry(points))
        pool.shutdown()
        pool.shutdown()


class TestWorkerPoolCampaigns:
    def test_campaign_on_persistent_executor_matches_local(self):
        request = CampaignRequest(hours=48, alphas=(1.0,), baselines=("DP1",))
        scenarios, labels, policies, trace, config = request.build()
        local = FleetCampaign(scenarios, config, scenario_labels=labels).run(
            policies, trace
        )
        with WorkerPool(workers=1, campaign_workers=2) as pool:
            first = pool.run_campaign(
                scenarios, policies, trace, config, scenario_labels=labels
            )
            # Second run reuses the same process executor (no respawn).
            second = pool.run_campaign(
                scenarios, policies, trace, config, scenario_labels=labels
            )
            assert pool.stats()["campaigns"] == 2
        for result in (first, second):
            for scenario_index, policy_index, cell in result:
                reference = local.result(policy_index, scenario_index)
                np.testing.assert_allclose(
                    cell.objective_values(),
                    reference.objective_values(),
                    atol=1e-9,
                )
                np.testing.assert_allclose(
                    cell.battery_charge_j,
                    reference.battery_charge_j,
                    atol=1e-9,
                )


class TestServiceWithPool:
    def test_pooled_service_matches_scalar_and_merges_stats(self, points):
        async def scenario():
            service = AllocationService(
                default_points=points, window_s=0.001, workers=2
            )
            burst = [
                AllocationRequest(float(b)) for b in np.linspace(0.2, 9.9, 48)
            ]
            responses = await service.allocate_many(burst)
            repeat = await service.allocate(burst[0])
            stats = service.stats()
            service.close()
            return responses, repeat, stats

        responses, repeat, stats = asyncio.run(scenario())
        for response in responses[:5]:
            reference = scalar_solve(
                AllocationRequest(response.energy_budget_j), points
            )
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )
        assert repeat.cache_hit
        assert stats["pool"]["workers"] == 2
        assert stats["pool"]["requests"] == 48
        assert stats["pool"]["tasks"] >= 1
        assert stats["batcher"]["requests"] == 48

    def test_pooled_micro_batcher_coalesces_singles(self, points):
        async def scenario():
            registry = EngineRegistry(points)
            with WorkerPool(workers=2, registry=registry) as pool:
                batcher = MicroBatcher(registry, window_s=0.005, pool=pool)
                requests = [
                    AllocationRequest(float(b))
                    for b in np.linspace(0.2, 9.9, 32)
                ]
                responses = await batcher.solve_many(requests)
                return responses, batcher.stats

        responses, stats = asyncio.run(scenario())
        assert stats.batches == 1
        assert all(response.batch_size == 32 for response in responses)

    def test_pooled_batcher_propagates_errors(self, points):
        async def scenario():
            registry = EngineRegistry(points)
            with WorkerPool(workers=2, registry=registry) as pool:
                batcher = MicroBatcher(registry, window_s=0.001, pool=pool)
                bad = AllocationRequest(5.0)
                # Corrupt post-validation so only the solve path can object.
                object.__setattr__(bad, "energy_budget_j", -1.0)
                with pytest.raises(ValueError):
                    await batcher.solve(bad)

        asyncio.run(scenario())


class TestLatencyUnderLoad:
    def test_loop_stays_responsive_while_workers_solve(self, points):
        """With workers, a tiny request is not stuck behind a big burst."""

        async def scenario():
            service = AllocationService(
                default_points=points, window_s=0.0, workers=2, cache_size=0
            )
            big = [
                AllocationRequest(float(b))
                for b in np.linspace(0.2, 10.0, 200)
            ]
            burst_task = asyncio.ensure_future(service.allocate_many(big))
            await asyncio.sleep(0)  # let the burst flush onto the pool
            started = time.perf_counter()
            await service.allocate(AllocationRequest(5.0))
            single_latency = time.perf_counter() - started
            await burst_task
            service.close()
            return single_latency

        # Generous bound: the point is "did not deadlock behind the burst".
        assert asyncio.run(scenario()) < 5.0
