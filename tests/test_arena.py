"""Tests for the shared-memory column arena and its service integration.

The arena is a transport, not a solver: every test here is about bytes
and lifecycle.  Cells written by a worker must read back bit for bit as
zero-copy views; segment names must never outlive a campaign -- not on
success, not on a worker crash mid-cell, not when a campaign is deleted
over HTTP -- and the sharded runner must produce results identical to the
single-process run with the arena on and off.  The per-endpoint latency
histograms that ride along in ``/stats`` are covered at the bottom.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data.table2 import table2_design_points
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.service import arena
from repro.service.cache import EndpointLatencies, LatencyHistogram
from repro.service.client import AllocationClient
from repro.service.requests import CampaignRequest
from repro.service.server import (
    AllocationServer,
    AllocationService,
    start_in_thread,
)
from repro.service.shard import run_sharded_campaign
from repro.simulation.device import DeviceConfig
from repro.simulation.fleet import CampaignConfig, FleetCampaign
from repro.simulation.policies import ReapPolicy, StaticPolicy

pytestmark = pytest.mark.skipif(
    not arena.arena_available(),
    reason="platform cannot create shared-memory segments",
)


@pytest.fixture(scope="module")
def points():
    return tuple(table2_design_points())


@pytest.fixture(scope="module")
def trace():
    month = SyntheticSolarModel(seed=2015).generate_month(9)
    return SolarTrace(month.hours[:72], name=month.name)


def _policies(points):
    return [
        ReapPolicy(points, alpha=1.0),
        ReapPolicy(points, alpha=2.0),
        StaticPolicy(points, "DP1"),
        StaticPolicy(points, "DP5"),
    ]


def _leaked_segments():
    """Names of arena segments still present in /dev/shm (Linux only)."""
    try:
        return sorted(
            name for name in os.listdir("/dev/shm")
            if name.startswith(arena._NAME_PREFIX)
        )
    except FileNotFoundError:  # non-Linux: nothing to inspect
        return []


def _assert_cells_match(sharded, single):
    assert sharded.scenario_labels == single.scenario_labels
    assert sharded.policy_names == single.policy_names
    for scenario_index, policy_index, cell in sharded:
        reference = single.result(policy_index, scenario_index)
        np.testing.assert_allclose(
            cell.objective_values(), reference.objective_values(), atol=1e-9
        )
        np.testing.assert_allclose(
            cell.active_times_s(), reference.active_times_s(), atol=1e-9
        )
        assert cell.total_windows == reference.total_windows
        if reference.battery_charge_j is not None:
            np.testing.assert_allclose(
                cell.battery_charge_j, reference.battery_charge_j, atol=1e-9
            )


class CrashingPolicy(ReapPolicy):
    """A policy that dies mid-cell (module-level so workers can unpickle it)."""

    def allocate_arrays(self, budgets_j):
        raise RuntimeError("boom: simulated worker crash")


class TestCellRoundTrip:
    def test_written_cells_read_back_exactly(self, points, trace):
        fleet = FleetCampaign(
            [HarvestScenario()], CampaignConfig(use_battery=True)
        )
        result = fleet.run(_policies(points)[:2], trace)
        cells = [(0, index, result.result(index)) for index in range(2)]
        name = arena.new_segment_name()
        shard = arena.write_cells(name, cells)
        assert shard.segment_name == name
        assert len(shard.cells) == 2
        block = arena.ArenaBlock.attach(shard)
        try:
            for slot, (_, _, reference) in zip(shard.cells, cells):
                columns, battery = arena.read_cell(block, slot)
                original = reference.columns
                np.testing.assert_array_equal(
                    columns.period_index, original.period_index
                )
                np.testing.assert_array_equal(
                    columns.objective_value, original.objective_value
                )
                np.testing.assert_array_equal(
                    columns.windows_total, original.windows_total
                )
                np.testing.assert_array_equal(
                    columns.times_by_design_point_s,
                    original.times_by_design_point_s,
                )
                assert columns.design_point_names == tuple(
                    original.design_point_names
                )
                np.testing.assert_array_equal(
                    battery, reference.battery_charge_j
                )
                assert slot.policy_name == reference.policy_name
        finally:
            block.close()

    def test_views_are_zero_copy_and_read_only(self, points, trace):
        fleet = FleetCampaign([HarvestScenario()], CampaignConfig())
        result = fleet.run(_policies(points)[:1], trace)
        shard = arena.write_cells(
            arena.new_segment_name(), [(0, 0, result.result(0))]
        )
        block = arena.ArenaBlock.attach(shard)
        try:
            columns, _ = arena.read_cell(block, shard.cells[0])
            assert columns.objective_value.base is not None  # a view, not a copy
            with pytest.raises(ValueError):
                columns.objective_value[0] = 0.0
        finally:
            block.close()

    def test_attach_unlinks_the_name_immediately(self, points, trace):
        fleet = FleetCampaign([HarvestScenario()], CampaignConfig())
        result = fleet.run(_policies(points)[:1], trace)
        name = arena.new_segment_name()
        shard = arena.write_cells(name, [(0, 0, result.result(0))])
        block = arena.ArenaBlock.attach(shard)
        try:
            # The name is gone the moment the parent holds the mapping: a
            # crash after this point cannot leak a named segment.
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            block.close()
        block.close()  # idempotent
        assert block.closed

    def test_release_segment_sweeps_and_tolerates_missing(self, points, trace):
        fleet = FleetCampaign([HarvestScenario()], CampaignConfig())
        result = fleet.run(_policies(points)[:1], trace)
        name = arena.new_segment_name()
        arena.write_cells(name, [(0, 0, result.result(0))])
        assert arena.release_segment(name) is True
        assert arena.release_segment(name) is False  # already gone

    def test_context_blob_round_trip(self):
        payload = {"trace": list(range(100)), "config": "closed-loop"}
        context = arena.publish_context(payload)
        try:
            assert arena.load_context(context.ref) == payload
            # Second load hits the worker-side cache (same digest).
            assert arena.load_context(context.ref) is arena.load_context(
                context.ref
            )
        finally:
            context.release()
        context.release()  # idempotent


class TestArenaLifecycle:
    def test_normal_completion_leaves_no_segments(self, points, trace):
        before = _leaked_segments()
        result = run_sharded_campaign(
            [HarvestScenario()],
            _policies(points),
            trace,
            CampaignConfig(use_battery=True),
            jobs=2,
            shared_memory=True,
        )
        assert result.num_cells == 4
        assert _leaked_segments() == before
        result.release()
        result.release()  # idempotent

    def test_worker_crash_mid_cell_leaves_no_segments(self, points, trace):
        before = _leaked_segments()
        policies = [ReapPolicy(points, alpha=1.0), CrashingPolicy(points)]
        with pytest.raises(RuntimeError, match="boom"):
            run_sharded_campaign(
                [HarvestScenario()],
                policies,
                trace,
                CampaignConfig(use_battery=True),
                jobs=2,
                shared_memory=True,
            )
        assert _leaked_segments() == before

    def test_sharded_equals_single_with_arena_on_and_off(self, points, trace):
        scenarios = [
            HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
            for factor in (0.032, 0.05)
        ]
        policies = _policies(points)
        config = CampaignConfig(use_battery=True)
        single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
        with_arena = run_sharded_campaign(
            scenarios, policies, trace, config, jobs=3, shared_memory=True
        )
        without = run_sharded_campaign(
            scenarios, policies, trace, config, jobs=3, shared_memory=False
        )
        _assert_cells_match(with_arena, single)
        _assert_cells_match(without, single)
        with_arena.release()

    def test_sampled_mode_rng_parity_through_the_arena(self, points, trace):
        scenarios = [HarvestScenario()]
        policies = _policies(points)[:2]
        config = CampaignConfig(
            use_battery=True,
            device=DeviceConfig(recognition_mode="sampled", seed=42),
        )
        single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
        sharded = run_sharded_campaign(
            scenarios, policies, trace, config, jobs=2, shared_memory=True
        )
        for scenario_index, policy_index, cell in sharded:
            reference = single.result(policy_index, scenario_index)
            # Bit-for-bit: cell identity implies identical Bernoulli streams.
            np.testing.assert_array_equal(
                np.asarray(cell.columns.windows_correct),
                np.asarray(reference.columns.windows_correct),
            )
        sharded.release()

    def test_time_sharded_open_loop_through_the_arena(self, points, trace):
        scenarios = [HarvestScenario()]
        policies = [ReapPolicy(points, alpha=1.0)]
        config = CampaignConfig(use_battery=False)
        before = _leaked_segments()
        single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
        sharded = run_sharded_campaign(
            scenarios, policies, trace, config, jobs=3, shared_memory=True
        )
        merged = sharded.result(0).columns
        reference = single.result(0).columns
        np.testing.assert_array_equal(merged.period_index, reference.period_index)
        np.testing.assert_allclose(
            merged.objective_value, reference.objective_value, atol=1e-9
        )
        assert _leaked_segments() == before

    def test_forcing_arena_off_is_honoured(self, points, trace, monkeypatch):
        # With shared memory explicitly off the runner must never touch the
        # arena module's segment machinery.
        def forbidden(*_args, **_kwargs):  # pragma: no cover - assertion hook
            raise AssertionError("pickle path called into the arena")

        monkeypatch.setattr(arena, "write_cells", forbidden)
        monkeypatch.setattr(arena, "publish_context", forbidden)
        single = run_sharded_campaign(
            [HarvestScenario()], _policies(points)[:2], trace, jobs=1
        )
        sharded = run_sharded_campaign(
            [HarvestScenario()],
            _policies(points)[:2],
            trace,
            jobs=2,
            shared_memory=False,
        )
        _assert_cells_match(sharded, single)

    def test_requiring_arena_on_unavailable_platform_raises(self, monkeypatch):
        monkeypatch.setattr(arena, "arena_available", lambda: False)
        from repro.service.shard import _use_arena

        assert _use_arena(None) is False  # auto-detect degrades quietly
        assert _use_arena(False) is False
        with pytest.raises(RuntimeError, match="shared-memory"):
            _use_arena(True)


class TestServiceArenaLifecycle:
    REQUEST = CampaignRequest(hours=48, alphas=(1.0,), baselines=("DP1",))

    @pytest.fixture(scope="class")
    def service(self, points):
        service = AllocationService(
            default_points=points, window_s=0.001, campaign_workers=2,
            shared_memory=True,
        )
        yield service
        service.close()

    @pytest.fixture(scope="class")
    def server(self, service):
        handle = start_in_thread(service)
        yield handle
        handle.stop()

    @pytest.fixture(scope="class")
    def client(self, server):
        return AllocationClient(port=server.port, timeout_s=120.0)

    def test_delete_campaign_releases_arena_blocks(self, service, client):
        before = _leaked_segments()
        submitted = client.submit_campaign(self.REQUEST)
        client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
        result = service._campaigns[submitted.campaign_id].result
        assert result is not None
        blocks = list(result._arena_blocks)
        assert blocks, "arena transport should hand blocks to the result"
        assert all(not block.closed for block in blocks)
        assert _leaked_segments() == before  # attached blocks are unlinked

        assert client.delete_campaign(submitted.campaign_id)["deleted"] is True
        assert all(block.closed for block in blocks)
        assert submitted.campaign_id not in service._campaigns
        assert _leaked_segments() == before

    def test_columns_stream_then_delete(self, service, client):
        # Streaming binary columns straight off the arena views, then
        # deleting, must free the mappings and leave no segments behind.
        before = _leaked_segments()
        submitted = client.submit_campaign(self.REQUEST)
        client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
        remote = client.campaign_result(
            submitted.campaign_id, binary=True, codec="raw"
        )
        zlib_remote = client.campaign_result(submitted.campaign_id, binary=True)
        for scenario_index, policy_index, cell in remote:
            reference = zlib_remote.result(policy_index, scenario_index)
            np.testing.assert_array_equal(
                cell.objective_values(), reference.objective_values()
            )
        client.delete_campaign(submitted.campaign_id)
        assert _leaked_segments() == before


class TestLatencyHistogram:
    def test_empty_histogram_reports_zeros(self):
        payload = LatencyHistogram().to_json_dict()
        assert payload == {
            "count": 0, "mean_ms": 0.0, "max_ms": 0.0,
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_percentiles_are_ordered_and_bounded(self):
        histogram = LatencyHistogram()
        for milliseconds in (1, 1, 2, 2, 3, 4, 8, 16, 50, 400):
            histogram.record(milliseconds / 1000.0)
        payload = histogram.to_json_dict()
        assert payload["count"] == 10
        assert payload["p50_ms"] <= payload["p95_ms"] <= payload["p99_ms"]
        assert payload["p99_ms"] <= payload["max_ms"]
        assert payload["max_ms"] == pytest.approx(400.0)
        # Log buckets: each percentile is within 2x of the true quantile.
        assert 2.0 <= payload["p50_ms"] <= 8.0

    def test_overflow_bucket_reports_the_max(self):
        histogram = LatencyHistogram()
        histogram.record(1000.0)  # beyond the last ~67 s bucket
        payload = histogram.to_json_dict()
        assert payload["p99_ms"] == pytest.approx(1000.0 * 1000.0)

    def test_endpoint_latencies_group_by_label(self):
        latencies = EndpointLatencies()
        latencies.observe("GET /stats", 0.001)
        latencies.observe("GET /stats", 0.002)
        latencies.observe("POST /allocate", 0.004)
        payload = latencies.to_json_dict()
        assert sorted(payload) == ["GET /stats", "POST /allocate"]
        assert payload["GET /stats"]["count"] == 2

    def test_endpoint_label_collapses_campaign_ids(self):
        label = AllocationServer._endpoint_label
        assert label("GET", "/healthz") == "GET /healthz"
        assert label("POST", "/allocate/batch") == "POST /allocate/batch"
        assert label("GET", "/campaign/abc123") == "GET /campaign/*"
        assert (
            label("GET", "/campaign/abc123/columns?format=binary&dtype=f8")
            == "GET /campaign/*/columns"
        )
        assert label("DELETE", "/campaign/zzz") == "DELETE /campaign/*"
        assert label("GET", "/nope") == "GET (other)"

    def test_stats_endpoint_carries_histograms(self, points):
        service = AllocationService(default_points=points, window_s=0.001)
        handle = start_in_thread(service)
        try:
            client = AllocationClient(port=handle.port)
            client.health()
            client.health()
            stats = client.stats()
        finally:
            handle.stop()
        endpoints = stats["endpoints"]
        assert endpoints["GET /healthz"]["count"] >= 2
        assert endpoints["GET /healthz"]["p50_ms"] > 0.0
