"""Tests for the activity taxonomy and transition model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.har.activities import (
    ACTIVITY_LABELS,
    ALL_ACTIVITIES,
    Activity,
    ActivityTransitionModel,
    DEFAULT_ACTIVITY_PREVALENCE,
    NUM_CLASSES,
    activity_from_label,
    class_counts,
)


class TestActivityEnum:
    def test_seven_classes(self):
        assert NUM_CLASSES == 7
        assert len(ALL_ACTIVITIES) == 7
        assert len(ACTIVITY_LABELS) == 7

    def test_indices_are_contiguous(self):
        assert [int(a) for a in ALL_ACTIVITIES] == list(range(7))

    def test_static_dynamic_partition(self):
        static = {a for a in ALL_ACTIVITIES if a.is_static}
        dynamic = {a for a in ALL_ACTIVITIES if a.is_dynamic}
        assert static == {Activity.SIT, Activity.STAND, Activity.DRIVE, Activity.LIE_DOWN}
        assert dynamic == {Activity.WALK, Activity.JUMP}
        assert not (static & dynamic)
        assert Activity.TRANSITION not in static | dynamic

    def test_label_roundtrip(self):
        for activity in ALL_ACTIVITIES:
            assert activity_from_label(activity.label) is activity

    def test_label_lookup_is_case_and_separator_insensitive(self):
        assert activity_from_label("Lie Down") is Activity.LIE_DOWN
        assert activity_from_label("LIE-DOWN") is Activity.LIE_DOWN
        assert activity_from_label("  walk ") is Activity.WALK

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            activity_from_label("swimming")


class TestPrevalence:
    def test_default_prevalence_covers_all_classes(self):
        assert set(DEFAULT_ACTIVITY_PREVALENCE) == set(ALL_ACTIVITIES)

    def test_default_prevalence_sums_to_one(self):
        assert sum(DEFAULT_ACTIVITY_PREVALENCE.values()) == pytest.approx(1.0)


class TestTransitionModel:
    def test_rejects_short_dwell(self):
        with pytest.raises(ValueError):
            ActivityTransitionModel(dwell_windows=0.5)

    def test_rejects_incomplete_prevalence(self):
        with pytest.raises(ValueError):
            ActivityTransitionModel(prevalence={Activity.SIT: 1.0})

    def test_stationary_distribution_normalised(self):
        model = ActivityTransitionModel()
        dist = model.stationary_distribution()
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist >= 0)

    def test_sample_next_never_returns_current_or_transition(self, rng):
        model = ActivityTransitionModel()
        for activity in (Activity.SIT, Activity.WALK, Activity.DRIVE):
            for _ in range(20):
                nxt = model.sample_next(activity, rng)
                assert nxt is not activity
                assert nxt is not Activity.TRANSITION

    def test_stream_length(self, rng):
        model = ActivityTransitionModel(dwell_windows=5)
        stream = model.generate_stream(123, rng)
        assert len(stream) == 123

    def test_empty_stream(self, rng):
        model = ActivityTransitionModel()
        assert model.generate_stream(0, rng) == []

    def test_negative_length_rejected(self, rng):
        model = ActivityTransitionModel()
        with pytest.raises(ValueError):
            model.generate_stream(-1, rng)

    def test_stream_contains_transitions_between_dwells(self, rng):
        model = ActivityTransitionModel(dwell_windows=4)
        stream = model.generate_stream(400, rng)
        assert Activity.TRANSITION in stream
        # Consecutive non-transition segments should be separated by a
        # transition window.
        for previous, current in zip(stream, stream[1:]):
            if previous is not current and previous is not Activity.TRANSITION:
                assert current is Activity.TRANSITION or current is previous

    def test_stream_respects_initial_activity(self, rng):
        model = ActivityTransitionModel(dwell_windows=10)
        stream = model.generate_stream(20, rng, initial=Activity.WALK)
        assert stream[0] is Activity.WALK

    def test_long_stream_covers_most_activities(self):
        model = ActivityTransitionModel(dwell_windows=5)
        stream = model.generate_stream(2000, np.random.default_rng(3))
        seen = set(stream)
        assert len(seen) >= 6


class TestClassCounts:
    def test_counts_every_class(self):
        labels = [0, 0, 2, 6, 6, 6]
        counts = class_counts(labels)
        assert counts[Activity.SIT] == 2
        assert counts[Activity.WALK] == 1
        assert counts[Activity.TRANSITION] == 3
        assert counts[Activity.JUMP] == 0
        assert sum(counts.values()) == len(labels)
