"""Tests for the linear-program containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lp import (
    InfeasibleProblemError,
    LPSolution,
    LPStatus,
    LinearProgram,
    UnboundedProblemError,
)


class TestLinearProgramConstruction:
    def test_basic_shapes(self):
        lp = LinearProgram(
            objective=[1.0, 2.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[10.0],
        )
        assert lp.num_variables == 2
        assert lp.num_inequalities == 1
        assert lp.num_equalities == 0
        assert lp.num_constraints == 1

    def test_default_variable_names(self):
        lp = LinearProgram(objective=[1.0, 1.0, 1.0])
        assert lp.variable_names == ["x0", "x1", "x2"]

    def test_custom_variable_names_length_checked(self):
        with pytest.raises(ValueError, match="variable names"):
            LinearProgram(objective=[1.0, 1.0], variable_names=["only_one"])

    def test_empty_objective_rejected(self):
        with pytest.raises(ValueError):
            LinearProgram(objective=[])

    def test_mismatched_b_ub_rejected(self):
        with pytest.raises(ValueError):
            LinearProgram(objective=[1.0], a_ub=[[1.0]], b_ub=[1.0, 2.0])

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            LinearProgram(objective=[1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])

    def test_non_finite_values_rejected(self):
        with pytest.raises(ValueError):
            LinearProgram(objective=[np.inf, 1.0])

    def test_one_dimensional_constraint_reshaped(self):
        lp = LinearProgram(objective=[1.0, 1.0], a_ub=[2.0, 3.0], b_ub=[6.0])
        assert lp.a_ub.shape == (1, 2)


class TestLinearProgramEvaluation:
    @pytest.fixture
    def lp(self):
        return LinearProgram(
            objective=[3.0, 2.0],
            a_ub=[[1.0, 1.0], [2.0, 1.0]],
            b_ub=[4.0, 5.0],
        )

    def test_objective_value(self, lp):
        assert lp.objective_value([1.0, 1.0]) == pytest.approx(5.0)

    def test_objective_value_wrong_length(self, lp):
        with pytest.raises(ValueError):
            lp.objective_value([1.0])

    def test_feasibility_interior_point(self, lp):
        assert lp.is_feasible([1.0, 1.0])

    def test_feasibility_violated_inequality(self, lp):
        assert not lp.is_feasible([5.0, 5.0])

    def test_feasibility_negative_variable(self, lp):
        assert not lp.is_feasible([-0.5, 1.0])

    def test_feasibility_wrong_dimension(self, lp):
        assert not lp.is_feasible([1.0])

    def test_constraint_violation_zero_when_feasible(self, lp):
        assert lp.constraint_violation([1.0, 1.0]) == pytest.approx(0.0)

    def test_constraint_violation_positive_when_infeasible(self, lp):
        assert lp.constraint_violation([10.0, 10.0]) > 0

    def test_equality_feasibility(self):
        lp = LinearProgram(
            objective=[1.0, 1.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[2.0],
        )
        assert lp.is_feasible([1.0, 1.0])
        assert not lp.is_feasible([1.0, 0.5])


class TestLPSolution:
    def test_ok_property(self):
        solution = LPSolution(LPStatus.OPTIMAL, np.array([1.0]), 1.0, 3)
        assert solution.ok
        assert solution.raise_for_status() is solution

    def test_infeasible_raises(self):
        solution = LPSolution(LPStatus.INFEASIBLE, np.zeros(1), float("nan"), 3)
        assert not solution.ok
        with pytest.raises(InfeasibleProblemError):
            solution.raise_for_status()

    def test_unbounded_raises(self):
        solution = LPSolution(LPStatus.UNBOUNDED, np.zeros(1), float("inf"), 3)
        with pytest.raises(UnboundedProblemError):
            solution.raise_for_status()

    def test_value_accessor(self):
        solution = LPSolution(LPStatus.OPTIMAL, np.array([1.5, 2.5]), 4.0, 1)
        assert solution.value(1) == pytest.approx(2.5)

    def test_status_ok_flag(self):
        assert LPStatus.OPTIMAL.ok
        assert not LPStatus.INFEASIBLE.ok
        assert not LPStatus.UNBOUNDED.ok
        assert not LPStatus.ITERATION_LIMIT.ok
