"""Smoke tests that the shipped examples run end to end.

Each example is executed in-process (via ``runpy``) with arguments that keep
the runtime to a few seconds, and its stdout is checked for the headline
output it promises.  This keeps the examples from rotting as the library
evolves.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(script: str, argv, capsys) -> str:
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv)
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        output = _run_example("quickstart.py", [], capsys)
        assert "Design points available" in output
        assert "REAP schedules" in output
        assert "DP4" in output and "DP5" in output

    def test_runtime_alpha_adaptation(self, capsys):
        output = _run_example("runtime_alpha_adaptation.py", [], capsys)
        assert "runtime preference changes" in output
        assert "Day summary" in output

    def test_har_design_space_small(self, capsys):
        output = _run_example(
            "har_design_space.py", ["--windows", "200", "--users", "4"], capsys
        )
        assert "Characterised design points" in output
        assert "Pareto-optimal subset" in output

    def test_closed_loop_forecasting(self, capsys):
        output = _run_example(
            "closed_loop_forecasting.py", ["--hours", "48"], capsys
        )
        assert "Closed-loop REAP" in output
        assert "Horizon24-persistence" in output
        assert "MPC24-noisy" in output
        assert "Persistence forecast error" in output
        assert "48-hour summary" in output

    def test_service_demo(self, capsys):
        output = _run_example("service_demo.py", ["--requests", "16"], capsys)
        assert "Allocation service listening" in output
        assert "served allocations" in output
        assert "16/16 answers served from the LRU cache" in output

    @pytest.mark.slow
    def test_solar_month_study(self, capsys):
        output = _run_example("solar_month_study.py", ["--month", "9"], capsys)
        assert "Month-long campaign" in output
        assert "REAP improvement over the static baselines" in output
