"""Tests for the REAP allocator and the analytic reference solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocator import AllocatorConfig, ReapAllocator
from repro.core.analytic import enumerate_vertices, solve_analytic
from repro.core.problem import BudgetTooSmallError, ReapProblem
from repro.core.simplex import PivotRule


class TestAllocatorConfig:
    def test_invalid_formulation_rejected(self):
        with pytest.raises(ValueError, match="formulation"):
            AllocatorConfig(formulation="magic")

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            AllocatorConfig(max_iterations=0)

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(ValueError):
            ReapAllocator(AllocatorConfig(), formulation="full")


class TestAllocatorBasics:
    def test_paper_example_dp4_dp5_blend_at_5j(self, table2_points):
        """Section 5.2: at a 5 J budget REAP uses DP4 ~42% and DP5 ~58%."""
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0, alpha=1.0)
        allocation = ReapAllocator().solve(problem)
        active = {k: v for k, v in allocation.as_dict().items() if v > 1.0}
        assert set(active) == {"DP4", "DP5"}
        assert allocation.share_for("DP4") == pytest.approx(0.42, abs=0.03)
        assert allocation.share_for("DP5") == pytest.approx(0.58, abs=0.03)
        assert allocation.active_time_s == pytest.approx(3600.0, rel=1e-6)

    def test_reduces_to_dp1_above_saturation(self, table2_points):
        """Above ~9.9 J the optimal policy is to run DP1 the whole hour."""
        problem = ReapProblem(tuple(table2_points), energy_budget_j=11.0, alpha=1.0)
        allocation = ReapAllocator().solve(problem)
        assert allocation.time_for("DP1") == pytest.approx(3600.0, rel=1e-6)
        assert allocation.expected_accuracy == pytest.approx(0.94, rel=1e-6)

    def test_uses_cheapest_point_when_starved(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=1.0, alpha=1.0)
        allocation = ReapAllocator().solve(problem)
        active = {k: v for k, v in allocation.as_dict().items() if v > 1.0}
        assert set(active) == {"DP5"}
        assert allocation.energy_j == pytest.approx(1.0, rel=1e-6)

    def test_budget_below_floor_clipped_to_off(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=0.05)
        allocation = ReapAllocator().solve(problem)
        assert allocation.active_time_s == 0.0
        assert not allocation.budget_feasible

    def test_budget_below_floor_raises_when_not_clipping(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=0.05)
        allocator = ReapAllocator(AllocatorConfig(clip_infeasible=False))
        with pytest.raises(BudgetTooSmallError):
            allocator.solve(problem)

    def test_solve_with_budget_helper(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        allocator = ReapAllocator()
        allocation = allocator.solve_with_budget(problem, 9.0)
        assert allocation.budget_j == pytest.approx(9.0)

    def test_iteration_count_recorded(self, table2_points):
        allocator = ReapAllocator()
        allocator.solve(ReapProblem(tuple(table2_points), energy_budget_j=5.0))
        assert allocator.last_iterations >= 1

    def test_high_alpha_prefers_accurate_points(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0, alpha=8.0)
        allocation = ReapAllocator().solve(problem)
        # With heavy accuracy weighting DP5 should not be used.
        assert allocation.time_for("DP5") == pytest.approx(0.0, abs=1.0)

    def test_alpha_zero_maximises_active_time(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0, alpha=0.0)
        allocation = ReapAllocator().solve(problem)
        assert allocation.active_time_s == pytest.approx(3600.0, rel=1e-6)


class TestFormulationEquivalence:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0, 4.0])
    @pytest.mark.parametrize("budget", [0.5, 2.0, 5.0, 8.0, 12.0])
    def test_reduced_full_and_analytic_agree(self, table2_points, budget, alpha):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=budget, alpha=alpha)
        reduced = ReapAllocator(AllocatorConfig(formulation="reduced")).solve(problem)
        full = ReapAllocator(AllocatorConfig(formulation="full")).solve(problem)
        analytic = ReapAllocator(AllocatorConfig(formulation="analytic")).solve(problem)
        assert reduced.objective == pytest.approx(analytic.objective, rel=1e-7, abs=1e-9)
        assert full.objective == pytest.approx(analytic.objective, rel=1e-7, abs=1e-9)

    def test_bland_pivot_rule_reaches_same_objective(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=6.5, alpha=2.0)
        dantzig = ReapAllocator(AllocatorConfig(pivot_rule=PivotRule.DANTZIG)).solve(problem)
        bland = ReapAllocator(AllocatorConfig(pivot_rule=PivotRule.BLAND)).solve(problem)
        assert dantzig.objective == pytest.approx(bland.objective, rel=1e-9)

    def test_cross_check_mode_passes_on_valid_solver(self, table2_points):
        allocator = ReapAllocator(AllocatorConfig(cross_check=True))
        allocation = allocator.solve(
            ReapProblem(tuple(table2_points), energy_budget_j=6.0)
        )
        allocation.check(6.0)


class TestAllocationInvariants:
    @pytest.mark.parametrize("budget", np.linspace(0.2, 12.0, 13))
    def test_constraints_respected_across_budgets(self, table2_points, budget):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=float(budget))
        allocation = ReapAllocator().solve(problem)
        assert allocation.total_time_s == pytest.approx(3600.0, rel=1e-6)
        assert allocation.energy_j <= budget + 1e-6
        assert all(t >= -1e-9 for t in allocation.times_s)

    def test_objective_monotone_in_budget(self, table2_points):
        allocator = ReapAllocator()
        budgets = np.linspace(0.2, 11.0, 40)
        objectives = [
            allocator.solve(
                ReapProblem(tuple(table2_points), energy_budget_j=float(b))
            ).objective
            for b in budgets
        ]
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(objectives, objectives[1:]))

    def test_reap_never_worse_than_any_static(self, table2_points):
        from repro.core.problem import static_allocation

        allocator = ReapAllocator()
        for budget in np.linspace(0.2, 12.0, 25):
            problem = ReapProblem(tuple(table2_points), energy_budget_j=float(budget))
            reap = allocator.solve(problem)
            for dp in table2_points:
                static = static_allocation(problem, dp.name)
                assert reap.objective >= static.objective - 1e-9


class TestAnalyticSolver:
    def test_vertex_enumeration_contains_all_off(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        vertices = enumerate_vertices(problem)
        assert any(all(t == 0.0 for t in vertex) for vertex in vertices)

    def test_vertices_are_feasible(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=5.0)
        for vertex in enumerate_vertices(problem):
            total = sum(vertex)
            assert total <= problem.period_s * (1 + 1e-9)
            energy = sum(
                dp.power_w * t for dp, t in zip(problem.design_points, vertex)
            ) + problem.off_power_w * (problem.period_s - total)
            assert energy <= problem.energy_budget_j * (1 + 1e-6) + 1e-9

    def test_infeasible_budget_returns_all_off(self, table2_points):
        problem = ReapProblem(tuple(table2_points), energy_budget_j=0.01)
        allocation = solve_analytic(problem)
        assert allocation.active_time_s == 0.0
        assert not allocation.budget_feasible

    def test_two_identical_power_points_handled(self):
        from repro.core.design_point import DesignPoint

        points = (
            DesignPoint(name="A", accuracy=0.9, power_w=2e-3),
            DesignPoint(name="B", accuracy=0.8, power_w=2e-3),
        )
        problem = ReapProblem(points, energy_budget_j=4.0)
        allocation = solve_analytic(problem)
        # The more accurate of the two equal-power points should be used.
        assert allocation.time_for("A") > 0
        assert allocation.time_for("B") == pytest.approx(0.0)
