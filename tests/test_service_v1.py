"""Tests for the versioned ``/v1`` service API surface.

Covers the uniform error envelope (``{"error": {"code", "message",
"detail"}}`` with stable codes), the legacy-route shim and its
``Deprecation`` header, ``Idempotency-Key`` replay on submission, the
explicit ``queued -> running -> done | failed | cancelled`` lifecycle
(including the cancel endpoint), the store-backed lookup that turns an
evicted campaign id into a cache miss instead of a 404, and the 503
``store_unavailable`` mapping when the journal goes away.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service.client import AllocationClient, ServiceError
from repro.service.requests import CampaignRequest
from repro.service.server import AllocationService, start_in_thread

SMALL = CampaignRequest(hours=24, alphas=(1.0,), baselines=("DP1",))


def _raw(server, method: str, path: str, body=None, headers=None):
    """One raw HTTP exchange: (status, headers, decoded JSON body)."""
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=30.0
    )
    try:
        encoded = None if body is None else json.dumps(body).encode("utf-8")
        all_headers = {"Content-Type": "application/json"} if encoded else {}
        all_headers.update(headers or {})
        connection.request(method, path, body=encoded, headers=all_headers)
        response = connection.getresponse()
        raw = response.read()
        payload = json.loads(raw.decode("utf-8")) if raw else None
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


# --- error envelope + deprecation shim ------------------------------------------
class TestV1Envelope:
    @pytest.fixture(scope="class")
    def server(self):
        service = AllocationService(window_s=0.001, campaign_workers=1)
        handle = start_in_thread(service)
        yield handle
        handle.stop()
        service.close()

    def test_v1_404_uses_the_envelope(self, server):
        status, _, payload = _raw(server, "GET", "/v1/campaign/nope")
        assert status == 404
        assert payload == {
            "error": {
                "code": "not_found",
                "message": payload["error"]["message"],
                "detail": None,
            }
        }
        assert "nope" in payload["error"]["message"]

    def test_v1_400_bad_request_code(self, server):
        status, _, payload = _raw(
            server, "POST", "/v1/campaign", body={"alphas": "not-a-list"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_v1_405_and_unknown_route(self, server):
        status, _, payload = _raw(server, "DELETE", "/v1/healthz")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        status, _, payload = _raw(server, "GET", "/v1/never-heard-of-it")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_legacy_route_keeps_legacy_error_shape(self, server):
        # The shim preserves the old wire contract: a bare string under
        # "error", no envelope -- existing parsers keep working.
        status, headers, payload = _raw(server, "GET", "/campaign/nope")
        assert status == 404
        assert isinstance(payload["error"], str)
        assert headers.get("Deprecation") == "true"
        assert headers.get("Link") == '</v1/campaign/nope>; rel="successor-version"'

    def test_legacy_success_carries_deprecation_header(self, server):
        status, headers, _ = _raw(server, "GET", "/healthz")
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert headers.get("Link") == '</v1/healthz>; rel="successor-version"'

    def test_v1_routes_are_not_deprecated(self, server):
        status, headers, payload = _raw(server, "GET", "/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers
        assert payload["status"] == "ok"
        assert "pid" in payload

    def test_client_surfaces_the_code(self, server):
        client = AllocationClient(port=server.port, timeout_s=30.0)
        with pytest.raises(ServiceError) as excinfo:
            client.campaign_status("nope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"


# --- lifecycle + idempotency + store-backed lookup ------------------------------
class TestDurableV1Service:
    @pytest.fixture()
    def server(self, tmp_path):
        # max_campaigns=1 makes eviction immediate: any second finished
        # job pushes the first out of memory, which must *not* 404.
        service = AllocationService(
            window_s=0.001,
            campaign_workers=1,
            max_campaigns=1,
            store=str(tmp_path / "jobs.db"),
        )
        handle = start_in_thread(service)
        yield handle
        handle.stop()
        service.close()

    @pytest.fixture()
    def client(self, server):
        return AllocationClient(port=server.port, timeout_s=120.0)

    def test_lifecycle_queued_to_done(self, client):
        submitted = client.submit_campaign(SMALL)
        assert submitted.status in ("queued", "running")
        status = client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
        assert status.status == "done"

    def test_idempotency_key_replays_the_same_job(self, client):
        first = client.submit_campaign(SMALL, idempotency_key="retry-1")
        second = client.submit_campaign(SMALL, idempotency_key="retry-1")
        assert first.campaign_id == second.campaign_id
        third = client.submit_campaign(SMALL, idempotency_key="retry-2")
        assert third.campaign_id != first.campaign_id

    def test_idempotent_replay_after_completion_reports_done(self, client):
        first = client.submit_campaign(SMALL, idempotency_key="retry-1")
        client.wait_for_campaign(first.campaign_id, timeout_s=120)
        replay = client.submit_campaign(SMALL, idempotency_key="retry-1")
        assert replay.campaign_id == first.campaign_id
        assert replay.status == "done"

    def test_evicted_campaign_is_reserved_from_store(self, server, client):
        # Regression: before the store existed, an id evicted from the
        # in-memory map 404'd even though its columns had been computed.
        first = client.submit_campaign(SMALL)
        client.wait_for_campaign(first.campaign_id, timeout_s=120)
        second = client.submit_campaign(
            CampaignRequest(hours=24, alphas=(2.0,), baselines=("DP1",))
        )
        client.wait_for_campaign(second.campaign_id, timeout_s=120)
        # max_campaigns=1: the first job is gone from memory now.
        assert first.campaign_id not in server.service._campaigns
        status = client.campaign_status(first.campaign_id)
        assert status.status == "done"
        result = client.campaign_result(first.campaign_id)
        assert len(list(result)) == SMALL.num_cells

    def test_cancel_finished_campaign_is_conflict(self, client):
        submitted = client.submit_campaign(SMALL)
        client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
        with pytest.raises(ServiceError) as excinfo:
            client.cancel_campaign(submitted.campaign_id)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "conflict"

    def test_cancel_reaches_cancelled_state(self, server, client):
        # A long trace with several shards: the cancel lands at a shard
        # boundary well before the campaign could finish.
        submitted = client.submit_campaign(
            CampaignRequest(hours=600, alphas=(0.5, 1.0, 2.0),
                            baselines=("DP1", "DP3"))
        )
        response = client.cancel_campaign(submitted.campaign_id)
        assert response.status in ("queued", "running", "cancelled")
        status = client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
        assert status.status == "cancelled"
        # Cancelled is terminal: columns answer 409 job_running-style
        # conflicts, cancelling again is a conflict.
        with pytest.raises(ServiceError) as excinfo:
            client.cancel_campaign(submitted.campaign_id)
        assert excinfo.value.status == 409

    def test_columns_before_done_is_job_running(self, server, client):
        submitted = client.submit_campaign(
            CampaignRequest(hours=600, alphas=(0.5, 1.0, 2.0),
                            baselines=("DP1", "DP3"))
        )
        try:
            client.campaign_result(submitted.campaign_id)
        except ServiceError as error:
            assert error.status == 409
            assert error.code == "job_running"
            assert error.detail["campaign_id"] == submitted.campaign_id
        client.wait_for_campaign(submitted.campaign_id, timeout_s=120)

    def test_store_unavailable_maps_to_503(self, server, client):
        # Yank the journal out from under the service: every store-backed
        # route must answer 503 store_unavailable, not a 500 traceback.
        server.service.store.close()
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(SMALL)
        assert excinfo.value.status == 503
        assert excinfo.value.code == "store_unavailable"


# --- submission replay across restart -------------------------------------------
class TestStoreBackedRestart:
    def test_finished_job_survives_a_new_service(self, tmp_path):
        store_path = str(tmp_path / "jobs.db")
        service = AllocationService(
            window_s=0.001, campaign_workers=1, store=store_path
        )
        with start_in_thread(service) as handle:
            client = AllocationClient(port=handle.port, timeout_s=120.0)
            submitted = client.submit_campaign(SMALL)
            client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
            reference = client.campaign_result(submitted.campaign_id)
        service.close()

        fresh = AllocationService(
            window_s=0.001, campaign_workers=1, store=store_path
        )
        with start_in_thread(fresh) as handle:
            client = AllocationClient(port=handle.port, timeout_s=120.0)
            status = client.campaign_status(submitted.campaign_id)
            assert status.status == "done"
            reloaded = client.campaign_result(submitted.campaign_id)
        fresh.close()
        for si, pi, cell in reloaded:
            import numpy as np

            np.testing.assert_array_equal(
                cell.objective_values(),
                reference.result(pi, si).objective_values(),
            )
