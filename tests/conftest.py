"""Shared pytest fixtures for the REAP reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design_point import DesignPoint
from repro.data.table2 import table2_design_points
from repro.har.classifier.train import TrainingConfig
from repro.har.synthesis import generate_study_dataset


@pytest.fixture
def table2_points():
    """The five published Pareto-optimal design points."""
    return table2_design_points()


@pytest.fixture
def rng():
    """A deterministic NumPy RNG for tests that need randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def simple_points():
    """A tiny hand-built design-point set with easy-to-verify numbers."""
    return [
        DesignPoint(name="HI", accuracy=0.9, power_w=3.0e-3),
        DesignPoint(name="MID", accuracy=0.8, power_w=2.0e-3),
        DesignPoint(name="LO", accuracy=0.6, power_w=1.0e-3),
    ]


@pytest.fixture(scope="session")
def small_dataset():
    """A small synthetic user study reused by feature/classifier tests.

    Session-scoped because synthesis takes a couple of seconds; tests must
    treat it as read-only.
    """
    return generate_study_dataset(num_users=6, num_windows=420, seed=42)


@pytest.fixture(scope="session")
def fast_training_config():
    """Training settings small enough for unit tests."""
    return TrainingConfig(max_epochs=30, patience=8, batch_size=32, seed=5)
