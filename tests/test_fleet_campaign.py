"""Equivalence suite: the vectorized fleet engine vs the scalar reference.

The fleet campaign engine (battery scan + batched allocation + columnar
device accounting) must reproduce the scalar ``HarvestingCampaign`` loop to
1e-9 on every per-period figure -- budgets, consumed energy, battery
trajectory, window counts -- across random traces, policies, alphas and
battery configurations, in both recognition modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    BatchAllocator,
    ConsumptionCurveError,
    StackedConsumptionCurves,
)
from repro.core.design_point import DesignPoint
from repro.data.paper_constants import ACTIVITY_WINDOW_S
from repro.energy.battery import Battery
from repro.energy.budget import HarvestFollowingAllocator
from repro.energy.fleet import BatteryScan
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.simulation.device import DEFAULT_WINDOW_S, DeviceConfig, DeviceSimulator
from repro.simulation.fleet import (
    CampaignConfig,
    FleetCampaign,
    policy_supports_fleet,
)
from repro.simulation.metrics import CampaignColumns, CampaignResult, PeriodOutcome
from repro.simulation.policies import (
    OnOffDutyCyclePolicy,
    OraclePolicy,
    ReapPolicy,
    StaticPolicy,
    default_policy_suite,
)
from repro.simulation.simulator import HarvestingCampaign

TOLERANCE = 1e-9


def _random_policy(points, rng):
    alpha = float(rng.uniform(0.25, 4.0))
    kind = rng.integers(0, 4)
    if kind == 0:
        return ReapPolicy(points, alpha=alpha)
    if kind == 1:
        return OraclePolicy(points, alpha=alpha)
    if kind == 2:
        name = points[int(rng.integers(0, len(points)))].name
        return StaticPolicy(points, name, alpha=alpha)
    return OnOffDutyCyclePolicy(points, alpha=alpha)


def _random_config(rng, recognition_mode):
    capacity = float(rng.uniform(20.0, 120.0))
    return CampaignConfig(
        use_battery=True,
        battery_capacity_j=capacity,
        battery_initial_j=(
            -1.0 if rng.random() < 0.5 else float(rng.uniform(0.0, capacity))
        ),
        battery_target_soc=float(rng.uniform(0.0, 0.9)),
        battery_max_draw_j=float(rng.uniform(0.0, 8.0)),
        device=DeviceConfig(
            recognition_mode=recognition_mode, seed=int(rng.integers(0, 2**31))
        ),
    )


def _assert_campaigns_match(scalar: CampaignResult, fleet: CampaignResult) -> None:
    assert len(scalar) == len(fleet)
    assert fleet.columns is not None, "fleet result should be columnar"
    columns = fleet.columns
    for index, outcome in enumerate(scalar.outcomes):
        assert outcome.windows_total == int(columns.windows_total[index])
        assert outcome.windows_observed == int(columns.windows_observed[index])
        assert outcome.energy_budget_j == pytest.approx(
            float(columns.energy_budget_j[index]), abs=TOLERANCE
        )
        assert outcome.energy_consumed_j == pytest.approx(
            float(columns.energy_consumed_j[index]), abs=TOLERANCE
        )
        assert outcome.active_time_s == pytest.approx(
            float(columns.active_time_s[index]), abs=1e-6
        )
        assert outcome.windows_correct == pytest.approx(
            float(columns.windows_correct[index]), abs=TOLERANCE
        )
        assert outcome.objective_value == pytest.approx(
            float(columns.objective_value[index]), abs=TOLERANCE
        )
    if scalar.battery_charge_j is not None:
        assert fleet.battery_charge_j is not None
        np.testing.assert_allclose(
            fleet.battery_charge_j, scalar.battery_charge_j, rtol=0, atol=TOLERANCE
        )


class TestClosedLoopEquivalence:
    """Fleet battery scan + batch allocation vs the hour-by-hour loop."""

    @pytest.mark.parametrize("recognition_mode", ["expected", "sampled"])
    def test_random_campaigns_match_scalar_loop(self, table2_points, recognition_mode):
        rng = np.random.default_rng(20260726)
        scenario = HarvestScenario()
        for _ in range(6):
            trace = SyntheticSolarModel(seed=int(rng.integers(0, 10_000))).generate_days(
                int(rng.integers(1, 300)), int(rng.integers(2, 4))
            )
            config = _random_config(rng, recognition_mode)
            policy_seed = int(rng.integers(0, 2**31))
            scalar = HarvestingCampaign(scenario, config, engine="scalar").run(
                _random_policy(table2_points, np.random.default_rng(policy_seed)),
                trace,
            )
            fleet = HarvestingCampaign(scenario, config, engine="fleet").run(
                _random_policy(table2_points, np.random.default_rng(policy_seed)),
                trace,
            )
            _assert_campaigns_match(scalar, fleet)

    @pytest.mark.parametrize("recognition_mode", ["expected", "sampled"])
    def test_policy_suite_shares_one_scan(self, table2_points, recognition_mode):
        trace = SyntheticSolarModel(seed=77).generate_days(120, 3)
        config = CampaignConfig(
            use_battery=True,
            battery_capacity_j=80.0,
            device=DeviceConfig(recognition_mode=recognition_mode, seed=3),
        )
        scenario = HarvestScenario()
        policies = default_policy_suite(table2_points, alpha=2.0)
        fleet_results = HarvestingCampaign(scenario, config, engine="fleet").run_many(
            policies, trace
        )
        scalar_results = HarvestingCampaign(scenario, config, engine="scalar").run_many(
            default_policy_suite(table2_points, alpha=2.0), trace
        )
        assert list(fleet_results) == list(scalar_results)
        for name in scalar_results:
            _assert_campaigns_match(scalar_results[name], fleet_results[name])

    def test_unsupported_policy_falls_back_to_scalar(self, table2_points):
        from repro.core.allocator import AllocatorConfig, ReapAllocator

        cross_checked = ReapPolicy(
            table2_points, allocator=ReapAllocator(AllocatorConfig(cross_check=True))
        )
        assert not policy_supports_fleet(cross_checked, use_battery=True)
        assert policy_supports_fleet(cross_checked, use_battery=False)

        trace = SyntheticSolarModel(seed=5).generate_days(10, 2)
        config = CampaignConfig(use_battery=True)
        scenario = HarvestScenario()
        fleet = HarvestingCampaign(scenario, config, engine="fleet").run(
            cross_checked, trace
        )
        scalar = HarvestingCampaign(scenario, config, engine="scalar").run(
            cross_checked, trace
        )
        # The fallback *is* the scalar loop, so the results agree exactly.
        assert fleet.columns is None
        for a, b in zip(fleet.outcomes, scalar.outcomes):
            assert a.objective_value == b.objective_value

    def test_rejects_unknown_engine(self, table2_points):
        with pytest.raises(ValueError):
            HarvestingCampaign(HarvestScenario(), engine="warp")

    def test_run_many_matches_policies_by_identity_not_name(self, table2_points):
        # Two same-named policies, one fleet-supported and one not: each must
        # be simulated with its own allocator (the unsupported one must not
        # inherit the supported one's fleet result).
        from repro.core.allocator import AllocatorConfig, ReapAllocator

        trace = SyntheticSolarModel(seed=9).generate_days(30, 1)
        config = CampaignConfig(use_battery=True)
        scenario = HarvestScenario()
        default_reap = ReapPolicy(table2_points)
        full_reap = ReapPolicy(
            table2_points,
            allocator=ReapAllocator(AllocatorConfig(formulation="full")),
        )
        results = HarvestingCampaign(scenario, config, engine="fleet").run_many(
            [default_reap, full_reap], trace
        )
        # Later-wins name collapse keeps the *second* policy's campaign,
        # which ran through the scalar fallback (list-based result).
        assert results["REAP"].columns is None
        scalar = HarvestingCampaign(scenario, config, engine="scalar").run(
            ReapPolicy(
                table2_points,
                allocator=ReapAllocator(AllocatorConfig(formulation="full")),
            ),
            trace,
        )
        np.testing.assert_allclose(
            results["REAP"].objective_values(),
            scalar.objective_values(),
            rtol=0,
            atol=1e-12,
        )

    @pytest.mark.parametrize("recognition_mode", ["expected", "sampled"])
    def test_mixed_design_point_sets_in_one_fleet(self, table2_points, recognition_mode):
        # Policies over different design-point subsets have different
        # consumption-curve grids; the closed-loop fleet must still run them
        # together and match the scalar loop.
        trace = SyntheticSolarModel(seed=21).generate_days(200, 2)
        config = CampaignConfig(
            use_battery=True,
            device=DeviceConfig(recognition_mode=recognition_mode, seed=17),
        )
        scenario = HarvestScenario()

        def policies():
            return [
                ReapPolicy(table2_points, alpha=1.0),
                ReapPolicy(table2_points[:3], alpha=2.0),
                StaticPolicy(table2_points[:2], "DP2", alpha=1.0),
            ]

        fleet = FleetCampaign(scenario, config).run(policies(), trace)
        scalar_campaign = HarvestingCampaign(scenario, config, engine="scalar")
        for index, policy in enumerate(policies()):
            _assert_campaigns_match(
                scalar_campaign.run(policy, trace), fleet.result(index)
            )


class TestOpenLoopEquivalence:
    @pytest.mark.parametrize("recognition_mode", ["expected", "sampled"])
    def test_open_loop_matches_scalar(self, table2_points, recognition_mode):
        rng = np.random.default_rng(99)
        scenario = HarvestScenario()
        trace = SyntheticSolarModel(seed=31).generate_days(150, 3)
        config = CampaignConfig(
            use_battery=False,
            device=DeviceConfig(recognition_mode=recognition_mode, seed=11),
        )
        for _ in range(4):
            policy_seed = int(rng.integers(0, 2**31))
            scalar = HarvestingCampaign(scenario, config, engine="scalar").run(
                _random_policy(table2_points, np.random.default_rng(policy_seed)),
                trace,
            )
            fleet = HarvestingCampaign(scenario, config, engine="fleet").run(
                _random_policy(table2_points, np.random.default_rng(policy_seed)),
                trace,
            )
            _assert_campaigns_match(scalar, fleet)


class TestBatteryScan:
    def test_matches_scalar_battery_and_allocator(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            capacity = float(rng.uniform(15.0, 100.0))
            target_soc = float(rng.uniform(0.0, 0.9))
            max_draw = float(rng.uniform(0.0, 7.0))
            harvest = rng.uniform(0.0, 9.0, 60) * (rng.random(60) < 0.7)
            fraction = float(rng.uniform(0.2, 1.0))

            battery = Battery(capacity_j=capacity)
            allocator = HarvestFollowingAllocator(
                battery, target_soc=target_soc, max_battery_draw_j=max_draw
            )
            budgets, consumed = [], []
            for h in harvest:
                budget = allocator.grant(float(h))
                spent = budget * fraction
                allocator.settle(float(h), spent)
                budgets.append(budget)
                consumed.append(spent)

            scan = BatteryScan(
                3,
                capacity_j=capacity,
                target_soc=target_soc,
                max_draw_j=max_draw,
            )
            result = scan.run(harvest, lambda b: b * fraction)
            assert result.num_devices == 3
            assert result.num_periods == harvest.size
            for device in range(3):
                np.testing.assert_allclose(
                    result.budgets_j[:, device], budgets, rtol=0, atol=1e-12
                )
                np.testing.assert_allclose(
                    result.device_charge_j(device),
                    battery.history,
                    rtol=0,
                    atol=1e-12,
                )
            np.testing.assert_allclose(result.final_charge_j, battery.history[-1])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            BatteryScan(0)
        with pytest.raises(ValueError):
            BatteryScan(2, capacity_j=-1.0)
        with pytest.raises(ValueError):
            BatteryScan(2, target_soc=1.5)
        scan = BatteryScan(2)
        with pytest.raises(ValueError):
            scan.run(np.full((5, 3), 1.0), lambda b: b)
        with pytest.raises(ValueError):
            scan.run(np.array([-1.0, 2.0]), lambda b: b)


class TestConsumptionCurves:
    def test_reap_curve_matches_engine_everywhere(self, table2_points):
        engine = BatchAllocator(table2_points)
        budgets = np.random.default_rng(1).uniform(0.0, 14.0, 3000)
        for alpha in (0.0, 0.5, 1.0, 2.0, 8.0):
            curve = engine.consumption_curve(alpha=alpha)
            np.testing.assert_allclose(
                curve(budgets),
                engine.device_consumption(budgets, alpha=alpha),
                rtol=0,
                atol=1e-10,
            )

    def test_static_curves_match_engine(self, table2_points):
        engine = BatchAllocator(table2_points)
        budgets = np.random.default_rng(2).uniform(0.0, 14.0, 1000)
        for dp in table2_points:
            curve = engine.static_consumption_curve(dp.name, alpha=2.0)
            np.testing.assert_allclose(
                curve(budgets),
                engine.static_arrays(dp.name, budgets, alpha=2.0).device_consumption_j,
                rtol=0,
                atol=1e-10,
            )

    def test_degenerate_design_point_rejected(self):
        # A design point cheaper than the off state breaks the
        # piecewise-linear structure; the engine must refuse a curve.
        points = [
            DesignPoint(name="CHEAP", accuracy=0.5, power_w=1e-6),
            DesignPoint(name="HOT", accuracy=0.9, power_w=3e-3),
        ]
        engine = BatchAllocator(points)
        with pytest.raises(ConsumptionCurveError):
            engine.consumption_curve(alpha=1.0)

    def test_stacked_curves_match_individuals(self, table2_points):
        engine = BatchAllocator(table2_points)
        curves = [
            engine.consumption_curve(alpha=1.0),
            engine.static_consumption_curve("DP1", alpha=1.0),
            engine.static_consumption_curve("DP5", alpha=2.0),
        ]
        stacked = StackedConsumptionCurves(curves)
        assert stacked.num_devices == 3
        budgets = np.random.default_rng(3).uniform(0.0, 12.0, 3)
        expected = [float(curve(np.array([b]))[0]) for curve, b in zip(curves, budgets)]
        np.testing.assert_array_equal(stacked(budgets), expected)

    def test_stacked_curves_heterogeneous_grids(self, table2_points):
        # Policies over different design-point sets produce curves with
        # different breakpoint grids; the stack must evaluate each device
        # against its own grid.
        full = BatchAllocator(table2_points)
        subset = BatchAllocator(table2_points[:3])
        curves = [
            full.consumption_curve(alpha=1.0),
            subset.consumption_curve(alpha=2.0),
            full.static_consumption_curve("DP5", alpha=1.0),
            subset.static_consumption_curve("DP2", alpha=1.0),
        ]
        stacked = StackedConsumptionCurves(curves)
        budgets = np.random.default_rng(6).uniform(0.0, 12.0, 4)
        expected = [float(curve(np.array([b]))[0]) for curve, b in zip(curves, budgets)]
        np.testing.assert_array_equal(stacked(budgets), expected)

    def test_curve_is_cached_per_policy(self, table2_points):
        policy = ReapPolicy(table2_points, alpha=1.0)
        assert policy.consumption_curve() is policy.consumption_curve()


class TestSolveArrays:
    def test_solve_arrays_matches_solve_grid(self, table2_points):
        engine = BatchAllocator(table2_points)
        budgets = np.random.default_rng(4).uniform(0.0, 12.0, 300)
        for alpha in (0.5, 1.0, 4.0):
            arrays = engine.solve_arrays(budgets, alpha=alpha)
            grid = engine.solve_grid(budgets, alphas=(alpha,))
            np.testing.assert_array_equal(arrays.times_s, grid.times_s[0])
            np.testing.assert_array_equal(arrays.energy_j, grid.energy_j[0])
            np.testing.assert_allclose(
                arrays.objective, grid.objective[0], rtol=0, atol=1e-12
            )
            np.testing.assert_array_equal(arrays.feasible, grid.budget_feasible)

    def test_static_arrays_match_static_allocations(self, table2_points):
        engine = BatchAllocator(table2_points)
        budgets = np.random.default_rng(5).uniform(0.0, 12.0, 60)
        for name in ("DP1", "DP4"):
            arrays = engine.static_arrays(name, budgets, alpha=2.0)
            for index, allocation in enumerate(
                engine.static_allocations(name, budgets, alpha=2.0)
            ):
                assert allocation.energy_j == pytest.approx(
                    float(arrays.energy_j[index]), abs=1e-12
                )
                assert allocation.objective == pytest.approx(
                    float(arrays.objective[index]), abs=1e-12
                )
                assert allocation.budget_feasible == bool(arrays.feasible[index])

    def test_allocation_materialisation(self, table2_points):
        engine = BatchAllocator(table2_points)
        arrays = engine.solve_arrays([5.0], alpha=1.0)
        allocation = arrays.allocation(0)
        allocation.check(5.0)
        assert allocation.objective == pytest.approx(float(arrays.objective[0]))


class TestColumnarResults:
    def _columns(self, periods=4):
        index = np.arange(periods)
        return CampaignColumns(
            period_index=index,
            energy_budget_j=np.full(periods, 5.0),
            energy_consumed_j=np.full(periods, 4.0),
            active_time_s=np.full(periods, 1800.0),
            off_time_s=np.full(periods, 1800.0),
            windows_total=np.full(periods, 2250),
            windows_observed=np.full(periods, 1000),
            windows_correct=np.full(periods, 900.0),
            objective_value=np.full(periods, 0.5),
            expected_accuracy=np.full(periods, 0.5),
            design_point_names=("DP1",),
            times_by_design_point_s=np.full((periods, 1), 1800.0),
        )

    def test_lazy_outcomes_match_columns(self):
        result = CampaignResult.from_columns("REAP", 1.0, self._columns())
        assert len(result) == 4
        assert result.mean_objective == pytest.approx(0.5)
        assert result.total_energy_consumed_j == pytest.approx(16.0)
        assert result.overall_recognition_rate == pytest.approx(900.0 / 2250.0)
        outcomes = result.outcomes  # materialised on demand
        assert isinstance(outcomes[0], PeriodOutcome)
        assert outcomes[2].time_by_design_point == {"DP1": 1800.0}
        assert result.summary()["periods"] == 4.0

    def test_columnar_results_are_read_only(self):
        result = CampaignResult.from_columns("REAP", 1.0, self._columns())
        with pytest.raises(ValueError):
            result.append(result.outcomes[0])

    def test_roundtrip_through_outcomes(self):
        columns = self._columns()
        rebuilt = CampaignColumns.from_outcomes(columns.to_outcomes())
        np.testing.assert_array_equal(rebuilt.windows_correct, columns.windows_correct)
        np.testing.assert_array_equal(rebuilt.period_index, columns.period_index)


class TestFleetGrid:
    def test_scenario_policy_grid(self, table2_points):
        trace = SyntheticSolarModel(seed=13).generate_days(60, 2)
        scenarios = [
            HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
            for factor in (0.032, 0.06)
        ]
        policies = [
            ReapPolicy(table2_points, alpha=1.0),
            StaticPolicy(table2_points, "DP5", alpha=1.0),
        ]
        fleet = FleetCampaign(
            scenarios,
            CampaignConfig(use_battery=True),
            scenario_labels=["low", "high"],
        )
        result = fleet.run(policies, trace)
        assert result.num_scenarios == 2
        assert result.num_policies == 2
        assert result.num_cells == 4
        assert result.scan is not None and result.scan.num_devices == 4
        # Higher exposure harvests more, so the fleet consumes at least as much.
        low = result.result("REAP", 0)
        high = result.result("REAP", 1)
        assert high.total_energy_consumed_j > low.total_energy_consumed_j
        # Each scenario row matches a dedicated single-scenario campaign.
        solo = HarvestingCampaign(
            scenarios[1], CampaignConfig(use_battery=True), engine="fleet"
        ).run(ReapPolicy(table2_points, alpha=1.0), trace)
        np.testing.assert_allclose(
            high.objective_values(), solo.objective_values(), rtol=0, atol=1e-12
        )
        for _, _, cell in result:
            assert isinstance(cell, CampaignResult)

    def test_ambiguous_policy_name_lookup_rejected(self, table2_points):
        trace = SyntheticSolarModel(seed=2).generate_days(50, 1)
        fleet = FleetCampaign(HarvestScenario(), CampaignConfig())
        result = fleet.run(
            [
                ReapPolicy(table2_points, alpha=1.0),
                ReapPolicy(table2_points, alpha=2.0),
            ],
            trace,
        )
        with pytest.raises(ValueError, match="ambiguous|appears"):
            result.result("REAP")
        assert result.result(0).alpha == 1.0
        assert result.result(1).alpha == 2.0

    def test_validation(self, table2_points):
        with pytest.raises(ValueError):
            FleetCampaign([])
        with pytest.raises(ValueError):
            FleetCampaign(
                [HarvestScenario()], scenario_labels=["a", "b"]
            )
        fleet = FleetCampaign(HarvestScenario())
        with pytest.raises(ValueError):
            fleet.run([], SyntheticSolarModel(seed=1).generate_days(1, 1))


class TestSatelliteFixes:
    def test_campaign_config_device_not_shared(self):
        first = CampaignConfig()
        second = CampaignConfig()
        assert first.device is not second.device

    def test_harvest_scenario_defaults_not_shared(self):
        first = HarvestScenario()
        second = HarvestScenario()
        assert first.cell is not second.cell
        assert first.circuit is not second.circuit

    def test_window_constant_hoisted(self, table2_points):
        assert DEFAULT_WINDOW_S == ACTIVITY_WINDOW_S
        from repro.core.schedule import TimeAllocation

        allocation = TimeAllocation.all_off([], period_s=3600.0)
        outcome = DeviceSimulator().run_period(allocation)
        assert outcome.windows_total == int(round(3600.0 / ACTIVITY_WINDOW_S))
