"""Tests for the observability layer (repro.obs) and its service wiring.

Covers the metrics registry's Prometheus text exposition (golden output),
the W3C traceparent codec, span parentage across asyncio handler ->
batcher -> pool threads and across ``run_sharded_campaign`` process
workers (shared-memory transport on and off), SLO burn-rate arithmetic
on injected clocks, structured JSON log lines, the campaign phase
profiler, and the client/CLI observability surface (``/metrics``,
``/trace/<id>``, ``repro fleet --profile``).
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.cli import main as cli_main
from repro.data.table2 import table2_design_points
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.obs import tracing
from repro.obs.metrics import (
    LOG2_BOUNDS_S,
    Counter,
    MetricsRegistry,
    format_labels,
    format_value,
)
from repro.obs.profiling import PhaseProfiler
from repro.obs.slo import DEFAULT_SLO_MS, SloTracker, parse_slo_spec
from repro.service.arena import arena_available
from repro.service.cache import EndpointLatencies, LatencyHistogram
from repro.service.client import AllocationClient, ServiceError
from repro.service.client import main as client_main
from repro.service.requests import AllocationRequest, CampaignResponse
from repro.service.server import AllocationService, start_in_thread
from repro.service.shard import run_sharded_campaign
from repro.simulation.fleet import CampaignConfig, FleetCampaign
from repro.simulation.policies import ReapPolicy, StaticPolicy


@pytest.fixture(scope="module")
def points():
    return tuple(table2_design_points())


@pytest.fixture(scope="module")
def trace():
    month = SyntheticSolarModel(seed=2015).generate_month(9)
    return SolarTrace(month.hours[:48], name=month.name)


# --- exposition format -----------------------------------------------------------
class TestExpositionFormat:
    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"

    def test_format_labels_sorted_and_escaped(self):
        rendered = format_labels({"b": 'x"y', "a": "p\\q"})
        assert rendered == '{a="p\\\\q",b="x\\"y"}'
        assert format_labels({}) == ""

    def test_registry_render_golden(self):
        registry = MetricsRegistry()
        counter = registry.counter("test_total", "Things counted.", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.0, kind="a")
        registry.gauge("test_gauge", "A level.").set(1.5)
        histogram = registry.histogram(
            "test_seconds", "A latency.", bounds=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert registry.render() == (
            "# HELP test_total Things counted.\n"
            "# TYPE test_total counter\n"
            'test_total{kind="a"} 3\n'
            "# HELP test_gauge A level.\n"
            "# TYPE test_gauge gauge\n"
            "test_gauge 1.5\n"
            "# HELP test_seconds A latency.\n"
            "# TYPE test_seconds histogram\n"
            'test_seconds_bucket{le="0.1"} 1\n'
            'test_seconds_bucket{le="1"} 2\n'
            'test_seconds_bucket{le="+Inf"} 3\n'
            "test_seconds_sum 5.55\n"
            "test_seconds_count 3\n"
        )

    def test_counter_rejects_negative_and_wrong_labels(self):
        counter = Counter("c_total", "c", ("kind",))
        with pytest.raises(ValueError, match="go up"):
            counter.inc(-1.0, kind="a")
        with pytest.raises(ValueError, match="labels"):
            counter.inc(other="a")

    def test_duplicate_family_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "d")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("dup_total", "d")

    def test_broken_callback_does_not_break_the_scrape(self):
        registry = MetricsRegistry()
        registry.callback("bad_metric", "b", "gauge", lambda: 1 / 0)
        registry.gauge("good_metric", "g").set(1.0)
        text = registry.render()
        assert "good_metric 1" in text
        assert "bad_metric" not in text

    def test_histogram_rejects_unsorted_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("h_seconds", "h", bounds=(1.0, 0.1))


class TestLatencyHistogramCompat:
    def test_percentiles_and_snapshot(self):
        histogram = LatencyHistogram()
        for seconds in (0.001, 0.002, 0.004, 0.100):
            histogram.record(seconds)
        payload = histogram.to_json_dict()
        assert payload["count"] == 4
        assert payload["p50_ms"] <= payload["p99_ms"]
        counts, count, total_s, max_s = histogram.snapshot()
        assert count == 4
        assert sum(counts) == 4
        assert total_s == pytest.approx(0.107)
        assert max_s == pytest.approx(0.100)

    def test_endpoint_latencies_prometheus_samples(self):
        endpoints = EndpointLatencies()
        endpoints.observe("POST /allocate", 0.002)
        samples = endpoints.prometheus_samples()
        suffixes = {suffix for suffix, _, _ in samples}
        assert suffixes == {"_bucket", "_sum", "_count"}
        assert all(
            labels["endpoint"] == "POST /allocate"
            for _, labels, _ in samples
        )
        # One bucket line per log2 bound plus +Inf, then _sum and _count.
        assert len(samples) == len(LOG2_BOUNDS_S) + 3


# --- traceparent + spans ---------------------------------------------------------
class TestTraceparent:
    def test_round_trip(self):
        context = tracing.SpanContext(tracing.new_trace_id(), tracing.new_span_id())
        parsed = tracing.parse_traceparent(tracing.format_traceparent(context))
        assert parsed == context

    def test_malformed_rejected(self):
        assert tracing.parse_traceparent(None) is None
        assert tracing.parse_traceparent("") is None
        assert tracing.parse_traceparent("not-a-header") is None
        assert tracing.parse_traceparent("00-abc-def-01") is None

    def test_all_zero_ids_rejected(self):
        assert tracing.parse_traceparent(f"00-{'0' * 32}-{'1' * 16}-01") is None
        assert tracing.parse_traceparent(f"00-{'1' * 32}-{'0' * 16}-01") is None

    def test_child_keeps_trace_id(self):
        context = tracing.SpanContext("a" * 32, "b" * 16)
        child = context.child()
        assert child.trace_id == context.trace_id
        assert child.span_id != context.span_id


class TestSpans:
    def test_nesting_builds_parentage(self):
        with tracing.capture_spans() as captured:
            with tracing.span("outer") as outer:
                assert tracing.current_context() == outer.context
                with tracing.span("inner") as inner:
                    assert inner.context.trace_id == outer.context.trace_id
            assert tracing.current_context() is None or (
                tracing.current_context() != outer.context
            )
        by_name = {record["name"]: record for record in captured}
        assert by_name["inner"]["parent_span_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_span_id"] is None

    def test_exception_still_emits_with_error_attribute(self):
        with tracing.capture_spans() as captured:
            with pytest.raises(RuntimeError):
                with tracing.span("doomed"):
                    raise RuntimeError("boom")
        assert captured[0]["attrs"]["error"] == "RuntimeError"

    def test_record_span_with_explicit_parent(self):
        parent = tracing.SpanContext("c" * 32, "d" * 16)
        with tracing.capture_spans() as captured:
            record = tracing.record_span("offloaded", parent, 100.0, 0.25, n=3)
        assert record in captured
        assert record["trace_id"] == parent.trace_id
        assert record["parent_span_id"] == parent.span_id
        assert record["duration_ms"] == pytest.approx(250.0)
        assert record["attrs"] == {"n": 3}

    def test_recorder_bounds_traces_and_spans(self):
        recorder = tracing.TraceRecorder(max_traces=2, max_spans_per_trace=3)
        for index in range(3):
            recorder.add({"trace_id": f"{index:032x}", "start_s": 1.0})
        assert len(recorder) == 2
        assert recorder.spans(f"{0:032x}") is None  # evicted (LRU)
        for _ in range(5):
            recorder.add({"trace_id": f"{2:032x}", "start_s": 2.0})
        assert len(recorder.spans(f"{2:032x}")) == 3
        assert recorder.spans("f" * 32) is None

    def test_ingest_files_into_the_global_recorder(self):
        trace_id = tracing.new_trace_id()
        tracing.ingest([{"trace_id": trace_id, "name": "shipped", "start_s": 1.0}])
        spans = tracing.recorder().spans(trace_id)
        assert spans is not None
        assert spans[0]["name"] == "shipped"


class TestStructuredLogs:
    def test_json_log_lines_parse_and_carry_trace_ids(self):
        stream = io.StringIO()
        handler = tracing.configure_logging("json", stream=stream)
        try:
            with tracing.span("unit.logged", parent=None, foo="bar"):
                pass
        finally:
            logging.getLogger().removeHandler(handler)
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line.strip()
        ]
        span_lines = [
            line for line in lines if line["logger"] == tracing.SPAN_LOGGER_NAME
        ]
        assert span_lines, lines
        record = span_lines[0]
        assert record["span_name"] == "unit.logged"
        assert len(record["trace_id"]) == 32
        assert record["attrs"] == {"foo": "bar"}

    def test_text_formatter_appends_trace_id(self):
        formatter = tracing.TextLogFormatter()
        record = logging.LogRecord("x", logging.INFO, "f", 1, "msg", (), None)
        record.trace_id = "a" * 32
        assert formatter.format(record).endswith(f"trace_id={'a' * 32}")

    def test_configure_logging_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="log format"):
            tracing.configure_logging("xml")

    def test_configure_logging_is_idempotent(self):
        first = tracing.configure_logging("json", stream=io.StringIO())
        second = tracing.configure_logging("text", stream=io.StringIO())
        root = logging.getLogger()
        try:
            ours = [
                handler
                for handler in root.handlers
                if getattr(handler, "_repro_obs_handler", False)
            ]
            assert ours == [second]
            assert first not in root.handlers
        finally:
            root.removeHandler(second)


# --- SLO tracking ----------------------------------------------------------------
class TestSloTracker:
    def test_parse_slo_spec(self):
        assert parse_slo_spec("allocate=5,campaign=500") == {
            "allocate": 5.0,
            "campaign": 500.0,
        }
        with pytest.raises(ValueError):
            parse_slo_spec("allocate")
        with pytest.raises(ValueError):
            parse_slo_spec("allocate=-1")
        with pytest.raises(ValueError):
            parse_slo_spec("  ,  ")

    def test_defaults_applied(self):
        tracker = SloTracker()
        assert tracker.match("POST /allocate") == "allocate"
        assert set(tracker.to_json_dict()["objectives"]) == set(DEFAULT_SLO_MS)

    def test_longest_key_wins_and_unmatched_is_none(self):
        tracker = SloTracker({"allocate": 5.0, "allocate/batch": 10.0})
        assert tracker.match("POST /allocate/batch") == "allocate/batch"
        assert tracker.match("POST /allocate") == "allocate"
        assert tracker.observe("GET /healthz", 0.001) is None

    def test_burn_rate_arithmetic(self):
        tracker = SloTracker({"allocate": 10.0}, target=0.9)
        now = 1_000_000.0
        for _ in range(8):
            tracker.observe("POST /allocate", 0.005, now=now)
        for _ in range(2):
            tracker.observe("POST /allocate", 0.050, now=now)
        # 2 bad / 10 total = 0.2 bad fraction; error budget 0.1 -> burn 2.0.
        assert tracker.burn_rate("allocate", "5m", now=now) == pytest.approx(2.0)
        assert tracker.burn_rate("allocate", "1h", now=now) == pytest.approx(2.0)
        payload = tracker.to_json_dict(now=now)["objectives"]["allocate"]
        assert payload["good"] == 8
        assert payload["total"] == 10
        assert payload["compliance"] == pytest.approx(0.8)
        assert payload["burn_rate_5m"] == pytest.approx(2.0)

    def test_windows_expire_independently(self):
        tracker = SloTracker({"allocate": 10.0}, target=0.9)
        now = 1_000_000.0
        tracker.observe("POST /allocate", 0.050, now=now)
        # 10 minutes later the 5m window is empty but the 1h one remembers.
        later = now + 600.0
        assert tracker.burn_rate("allocate", "5m", now=later) == 0.0
        assert tracker.burn_rate("allocate", "1h", now=later) == pytest.approx(10.0)
        assert tracker.burn_rate("allocate", "1h", now=now + 7200.0) == 0.0

    def test_register_metrics_exposes_families(self):
        registry = MetricsRegistry()
        tracker = SloTracker({"allocate": 5.0})
        tracker.observe("POST /allocate", 0.001)
        tracker.register_metrics(registry)
        text = registry.render()
        assert 'repro_slo_threshold_seconds{slo="allocate"} 0.005' in text
        assert 'repro_slo_events_total{outcome="good",slo="allocate"} 1' in text
        assert 'repro_slo_burn_rate{slo="allocate",window="5m"}' in text

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError, match="target"):
            SloTracker(target=1.0)


# --- phase profiler --------------------------------------------------------------
class TestPhaseProfiler:
    def test_phases_accumulate_and_merge(self):
        profiler = PhaseProfiler()
        assert not profiler
        with profiler.phase("solve"):
            pass
        with profiler.phase("solve"):
            pass
        profiler.add("merge", 0.5)
        profiler.merge({"merge": 0.25, "pack": 0.1})
        phases = profiler.as_dict()
        assert list(phases) == sorted(phases)
        assert phases["merge"] == pytest.approx(0.75)
        assert phases["pack"] == pytest.approx(0.1)
        assert phases["solve"] >= 0.0
        assert profiler

    def test_fleet_run_records_phases(self, points, trace):
        campaign = FleetCampaign(
            HarvestScenario(), CampaignConfig(use_battery=True)
        )
        result = campaign.run([ReapPolicy(points, alpha=1.0)], trace)
        assert "harvest" in result.phase_timings
        assert "cell_solve" in result.phase_timings
        assert "scan_settle" in result.phase_timings
        assert all(value >= 0.0 for value in result.phase_timings.values())


# --- propagation across process shards -------------------------------------------
class TestShardTracePropagation:
    def _run(self, points, trace, shared_memory):
        scenarios = [
            HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
            for factor in (0.032, 0.05)
        ]
        policies = [ReapPolicy(points, alpha=1.0), StaticPolicy(points, "DP1")]
        with tracing.span("test.campaign") as root:
            result = run_sharded_campaign(
                scenarios,
                policies,
                trace,
                CampaignConfig(use_battery=True),
                jobs=2,
                shared_memory=shared_memory,
            )
        return root, result

    def _assert_shard_spans(self, root, result):
        assert result.phase_timings
        assert "cell_solve" in result.phase_timings
        spans = tracing.recorder().spans(root.context.trace_id)
        assert spans is not None
        shard_spans = [s for s in spans if s["name"] == "campaign.shard"]
        assert shard_spans, spans
        for span in shard_spans:
            assert span["trace_id"] == root.context.trace_id
            assert span["parent_span_id"] == root.context.span_id

    def test_pickle_transport_carries_trace(self, points, trace):
        root, result = self._run(points, trace, shared_memory=False)
        self._assert_shard_spans(root, result)

    @pytest.mark.skipif(not arena_available(), reason="no shared memory arena")
    def test_arena_transport_carries_trace(self, points, trace):
        root, result = self._run(points, trace, shared_memory=True)
        self._assert_shard_spans(root, result)
        assert "arena_pack" in result.phase_timings
        assert "context_publish" in result.phase_timings


# --- HTTP integration ------------------------------------------------------------
class TestHttpObservability:
    @pytest.fixture(scope="class")
    def server(self, points):
        service = AllocationService(
            default_points=points,
            window_s=0.001,
            workers=2,
            slo_ms={"allocate": 25.0, "campaign": 5000.0},
        )
        handle = start_in_thread(service)
        yield handle
        handle.stop()
        service.close()

    @pytest.fixture()
    def client(self, server):
        return AllocationClient(port=server.port)

    def test_trace_propagates_handler_to_batcher_and_pool(self, client):
        client.allocate(AllocationRequest(energy_budget_j=7.31, alpha=1.3))
        trace_id = client.last_trace_id
        assert trace_id and len(trace_id) == 32
        payload = client.trace(trace_id)
        assert payload["trace_id"] == trace_id
        names = {span["name"] for span in payload["spans"]}
        assert "http.request" in names
        assert "batcher.solve" in names
        by_name = {span["name"]: span for span in payload["spans"]}
        assert all(
            span["trace_id"] == trace_id for span in payload["spans"]
        )
        assert (
            by_name["batcher.solve"]["parent_span_id"]
            == by_name["http.request"]["span_id"]
        )

    def test_fixed_traceparent_is_honoured(self, server):
        context = tracing.SpanContext(tracing.new_trace_id(), tracing.new_span_id())
        client = AllocationClient(
            port=server.port, traceparent=context.traceparent()
        )
        client.health()
        assert client.last_trace_id == context.trace_id
        spans = client.trace(context.trace_id)["spans"]
        request_spans = [s for s in spans if s["name"] == "http.request"]
        assert request_spans
        assert request_spans[0]["parent_span_id"] == context.span_id

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.trace("e" * 32)
        assert excinfo.value.status == 404

    def test_metrics_exposition(self, client):
        client.allocate(AllocationRequest(energy_budget_j=4.21, alpha=1.1))
        text = client.metrics_text()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="POST /allocate",status="200"}' in text
        assert "# TYPE repro_request_duration_seconds histogram" in text
        assert 'endpoint="POST /allocate"' in text
        assert "repro_slo_burn_rate" in text
        assert "repro_build_info" in text
        assert "repro_uptime_seconds" in text
        # Every non-comment line is "name{labels} value".
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels
            float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))

    def test_stats_carries_slo_and_uptime(self, client):
        stats = client.stats()
        assert stats["uptime_s"] >= 0.0
        assert "allocate" in stats["slo"]["objectives"]

    def test_cache_hit_and_outcome_counters(self, client):
        request = AllocationRequest(energy_budget_j=6.17, alpha=1.7)
        first = client.allocate(request)
        second = client.allocate(request)
        assert not first.cache_hit
        assert second.cache_hit
        stats = client.stats()
        assert stats["latency"]["by_outcome"]["cache_hit"]["count"] >= 1
        text = client.metrics_text()
        assert 'repro_allocations_total{outcome="cache_hit"}' in text
        assert 'repro_allocations_total{outcome="solve"}' in text

    def test_client_cli_metrics_and_trace_verbs(self, server, capsys):
        header = (
            f"00-{tracing.new_trace_id()}-{tracing.new_span_id()}-01"
        )
        code = client_main(
            [
                "--port", str(server.port), "--traceparent", header,
                "allocate", "--budget", "9.13",
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert client_main(["--port", str(server.port), "metrics"]) == 0
        assert "repro_requests_total" in capsys.readouterr().out
        trace_id = header.split("-")[1]
        assert client_main(["--port", str(server.port), "trace", trace_id]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_id"] == trace_id
        assert any(
            span["name"] == "http.request" for span in payload["spans"]
        )


# --- profile codec + CLI ---------------------------------------------------------
class TestProfileSurface:
    def test_campaign_response_profile_round_trip(self):
        response = CampaignResponse(
            campaign_id="c1",
            status="done",
            cells=4,
            trace_hours=48,
            profile={"cell_solve": 0.25, "merge": 0.01},
        )
        decoded = CampaignResponse.from_json_dict(
            json.loads(json.dumps(response.to_json_dict()))
        )
        assert decoded.profile == {"cell_solve": 0.25, "merge": 0.01}
        bare = CampaignResponse(
            campaign_id="c2", status="queued", cells=4, trace_hours=48
        )
        assert (
            CampaignResponse.from_json_dict(bare.to_json_dict()).profile is None
        )

    def test_fleet_cli_profile_flag(self, tmp_path, capsys):
        profile_path = tmp_path / "profile.json"
        code = cli_main(
            [
                "fleet", "--hours", "24", "--alphas", "1.0",
                "--baselines", "DP1", "--profile", str(profile_path),
            ]
        )
        assert code == 0
        assert "phase profile written to" in capsys.readouterr().out
        payload = json.loads(profile_path.read_text())
        assert "cell_solve" in payload["phases"]
        assert payload["total_s"] == pytest.approx(
            sum(payload["phases"].values())
        )
