"""Tests for the solar trace, synthetic irradiance and solar-cell models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harvesting.solar import (
    CloudModel,
    GOLDEN_COLORADO_LATITUDE_DEG,
    SyntheticSolarModel,
    clear_sky_ghi,
    solar_declination_rad,
    solar_elevation_rad,
)
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel, summarize_budgets
from repro.harvesting.traces import SolarTrace, TraceHour, load_nrel_csv


class TestSolarGeometry:
    def test_declination_extremes(self):
        # Summer solstice (~day 172) positive, winter solstice (~day 355) negative.
        assert solar_declination_rad(172) > 0.38
        assert solar_declination_rad(355) < -0.38

    def test_declination_bounds(self):
        for day in range(1, 366, 10):
            assert abs(solar_declination_rad(day)) <= np.radians(23.45) + 1e-9
        with pytest.raises(ValueError):
            solar_declination_rad(0)

    def test_elevation_peaks_at_noon(self):
        elevations = [solar_elevation_rad(172, hour) for hour in range(24)]
        assert int(np.argmax(elevations)) == 12

    def test_elevation_negative_at_night(self):
        assert solar_elevation_rad(172, 0.0) < 0
        assert solar_elevation_rad(172, 23.0) < 0

    def test_elevation_hour_bounds(self):
        with pytest.raises(ValueError):
            solar_elevation_rad(100, 24.0)

    def test_clear_sky_zero_at_night(self):
        assert clear_sky_ghi(200, 1.0) == 0.0

    def test_clear_sky_summer_noon_reasonable(self):
        ghi = clear_sky_ghi(172, 12.0, GOLDEN_COLORADO_LATITUDE_DEG)
        assert 800 < ghi < 1100

    def test_clear_sky_winter_below_summer(self):
        assert clear_sky_ghi(355, 12.0) < clear_sky_ghi(172, 12.0)


class TestCloudModel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            CloudModel(p_clear=0.8, p_partly=0.3)
        with pytest.raises(ValueError):
            CloudModel(hourly_jitter=1.5)

    def test_day_clearness_in_unit_interval(self, rng):
        model = CloudModel()
        for _ in range(50):
            clearness = model.sample_day_clearness(rng)
            assert 0.0 <= clearness <= 1.0

    def test_hourly_clearness_bounded(self, rng):
        model = CloudModel()
        values = model.hourly_clearness(0.9, 24, rng)
        assert values.shape == (24,)
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)


class TestSyntheticSolarModel:
    def test_month_length(self):
        trace = SyntheticSolarModel(seed=1).generate_month(9)
        assert len(trace) == 30 * 24
        assert trace.num_days == 30

    def test_generation_reproducible(self):
        a = SyntheticSolarModel(seed=3).generate_days(100, 3)
        b = SyntheticSolarModel(seed=3).generate_days(100, 3)
        np.testing.assert_allclose(a.ghi, b.ghi)

    def test_different_seeds_differ(self):
        a = SyntheticSolarModel(seed=3).generate_days(100, 3)
        b = SyntheticSolarModel(seed=4).generate_days(100, 3)
        assert not np.allclose(a.ghi, b.ghi)

    def test_night_hours_have_zero_irradiance(self):
        trace = SyntheticSolarModel(seed=2).generate_days(200, 2)
        night = [h.ghi_w_per_m2 for h in trace if h.hour_of_day in (0, 1, 2, 23)]
        assert max(night) == pytest.approx(0.0)

    def test_daytime_hours_have_positive_irradiance(self):
        trace = SyntheticSolarModel(seed=2).generate_days(172, 5)
        noon = [h.ghi_w_per_m2 for h in trace if h.hour_of_day == 12]
        assert min(noon) > 10.0

    def test_invalid_month_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSolarModel().generate_month(13)

    def test_invalid_day_count_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSolarModel().generate_days(1, 0)

    def test_september_helper(self):
        trace = SyntheticSolarModel(seed=5).generate_september()
        assert trace.num_days == 30
        assert trace[0].day_of_year == 244


class TestSolarTrace:
    def test_trace_hour_validation(self):
        with pytest.raises(ValueError):
            TraceHour(day_of_year=0, hour_of_day=0, ghi_w_per_m2=100.0)
        with pytest.raises(ValueError):
            TraceHour(day_of_year=1, hour_of_day=24, ghi_w_per_m2=100.0)
        with pytest.raises(ValueError):
            TraceHour(day_of_year=1, hour_of_day=0, ghi_w_per_m2=-1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            SolarTrace([])

    def test_from_arrays_and_views(self):
        trace = SolarTrace.from_arrays([1, 1, 2], [10, 11, 10], [100.0, 200.0, -5.0])
        assert len(trace) == 3
        assert trace.ghi[2] == 0.0  # negative clamped
        assert trace.labels[0] == "d001h10"
        assert trace.num_days == 2

    def test_daily_totals(self):
        trace = SolarTrace.from_arrays([1, 1, 2], [10, 11, 10], [100.0, 200.0, 50.0])
        totals = dict(trace.daily_totals())
        assert totals[1] == pytest.approx(300.0)
        assert totals[2] == pytest.approx(50.0)

    def test_slice_days(self):
        trace = SyntheticSolarModel(seed=1).generate_days(100, 5)
        sliced = trace.slice_days(101, 102)
        assert sliced.num_days == 2
        with pytest.raises(ValueError):
            trace.slice_days(300, 301)
        with pytest.raises(ValueError):
            trace.slice_days(102, 101)

    def test_daytime_filter(self):
        trace = SyntheticSolarModel(seed=1).generate_days(172, 2)
        day = trace.daytime_hours()
        assert len(day) < len(trace)
        assert all(h.ghi_w_per_m2 > 1.0 for h in day)

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "nrel.csv"
        path.write_text(
            "DOY,HOUR,GHI\n244,10,512.5\n244,11,630.0\n244,12,-2.0\n245,12,\n"
        )
        trace = load_nrel_csv(str(path))
        assert len(trace) == 4
        assert trace.ghi[0] == pytest.approx(512.5)
        assert trace.ghi[2] == 0.0   # negative clamped
        assert trace.ghi[3] == 0.0   # missing treated as zero

    def test_csv_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("DOY,HOUR\n1,1\n")
        with pytest.raises(ValueError, match="missing column"):
            load_nrel_csv(str(path))

    def test_csv_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("DOY,HOUR,GHI\n")
        with pytest.raises(ValueError):
            load_nrel_csv(str(path))


class TestSolarCellAndScenario:
    def test_output_power_scales_linearly(self):
        cell = SolarCellModel()
        assert cell.output_power_w(500.0) == pytest.approx(cell.output_power_w(1000.0) / 2)

    def test_zero_irradiance_zero_power(self):
        assert SolarCellModel().output_power_w(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SolarCellModel(area_m2=0.0)
        with pytest.raises(ValueError):
            SolarCellModel(efficiency=1.5)
        with pytest.raises(ValueError):
            SolarCellModel().output_power_w(-1.0)
        with pytest.raises(ValueError):
            SolarCellModel().hourly_energy_j(100.0, hours=-1.0)

    def test_peak_hour_budget_in_paper_operating_range(self):
        """A clear noon hour should land near (slightly above) the 9.9 J
        DP1 saturation point -- the calibration documented in DESIGN.md."""
        scenario = HarvestScenario()
        budget = scenario.harvested_energy_j(950.0)
        assert 8.0 < budget < 14.0

    def test_budgets_from_trace_alignment(self):
        trace = SyntheticSolarModel(seed=1).generate_days(244, 2)
        scenario = HarvestScenario()
        budgets = scenario.budgets_from_trace(trace)
        assert len(budgets) == len(trace)
        assert np.all(scenario.budget_array(trace) >= 0.0)

    def test_summarize_budgets(self):
        summary = summarize_budgets([0.0, 0.1, 5.0, 12.0])
        assert summary["num_periods"] == 4
        assert summary["hours_above_dp1_j"] == 1
        assert summary["hours_below_floor_j"] == 2
        assert summary["total_j"] == pytest.approx(17.1)
        with pytest.raises(ValueError):
            summarize_budgets([])
