"""Property-based tests (hypothesis) on the core data structures and solvers.

These check invariants over randomly generated inputs:

* the simplex solver always returns feasible, vertex-optimal allocations that
  agree with the exact enumeration solver;
* REAP never does worse than any static design point and is monotone in the
  energy budget;
* Pareto filtering returns a mutually non-dominated subset that dominates the
  discarded points;
* the from-scratch FFT agrees with NumPy and preserves energy (Parseval);
* the Haar DWT preserves energy level by level;
* energy accounting is additive and non-negative.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import ReapAllocator
from repro.core.analytic import solve_analytic
from repro.core.design_point import DesignPoint
from repro.core.pareto import is_dominated, pareto_front
from repro.core.problem import ReapProblem, static_allocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.har.features.dwt import haar_dwt, haar_dwt_single_level
from repro.har.features.fft import fft_radix2
from repro.har.features.statistical import statistical_features


# --- strategies --------------------------------------------------------------

def design_point_lists(min_size=1, max_size=6):
    """Random, uniquely named design-point sets."""
    point = st.tuples(
        st.floats(min_value=0.05, max_value=1.0),      # accuracy
        st.floats(min_value=1e-4, max_value=5e-3),     # power in W
    )
    return st.lists(point, min_size=min_size, max_size=max_size).map(
        lambda pairs: [
            DesignPoint(name=f"P{i}", accuracy=a, power_w=p)
            for i, (a, p) in enumerate(pairs)
        ]
    )


budgets = st.floats(min_value=0.0, max_value=25.0)
alphas = st.floats(min_value=0.0, max_value=8.0)


# --- allocator invariants --------------------------------------------------------

class TestAllocatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(points=design_point_lists(), budget=budgets, alpha=alphas)
    def test_simplex_matches_exact_enumeration(self, points, budget, alpha):
        problem = ReapProblem(
            tuple(points), energy_budget_j=budget, alpha=alpha,
            off_power_w=OFF_STATE_POWER_W,
        )
        simplex_allocation = ReapAllocator().solve(problem)
        exact_allocation = solve_analytic(problem)
        assert simplex_allocation.objective == pytest.approx(
            exact_allocation.objective, rel=1e-6, abs=1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(points=design_point_lists(), budget=budgets, alpha=alphas)
    def test_allocation_is_feasible(self, points, budget, alpha):
        problem = ReapProblem(tuple(points), energy_budget_j=budget, alpha=alpha)
        allocation = ReapAllocator().solve(problem)
        assert allocation.total_time_s == pytest.approx(ACTIVITY_PERIOD_S, rel=1e-6)
        assert all(t >= -1e-9 for t in allocation.times_s)
        if allocation.budget_feasible:
            assert allocation.energy_j <= budget * (1 + 1e-6) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(points=design_point_lists(min_size=2), budget=budgets)
    def test_reap_at_least_as_good_as_every_static(self, points, budget):
        problem = ReapProblem(tuple(points), energy_budget_j=budget)
        reap = ReapAllocator().solve(problem)
        for dp in points:
            static = static_allocation(problem, dp.name)
            assert reap.objective >= static.objective - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        points=design_point_lists(min_size=2),
        budget_low=st.floats(min_value=0.2, max_value=10.0),
        budget_delta=st.floats(min_value=0.0, max_value=10.0),
        alpha=alphas,
    )
    def test_objective_monotone_in_budget(self, points, budget_low, budget_delta, alpha):
        low = ReapAllocator().solve(
            ReapProblem(tuple(points), energy_budget_j=budget_low, alpha=alpha)
        )
        high = ReapAllocator().solve(
            ReapProblem(
                tuple(points), energy_budget_j=budget_low + budget_delta, alpha=alpha
            )
        )
        assert high.objective >= low.objective - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(points=design_point_lists(min_size=2), budget=budgets)
    def test_active_time_bounded_by_period(self, points, budget):
        allocation = ReapAllocator().solve(
            ReapProblem(tuple(points), energy_budget_j=budget)
        )
        assert allocation.active_time_s <= ACTIVITY_PERIOD_S * (1 + 1e-9)


# --- Pareto properties ---------------------------------------------------------------

class TestParetoProperties:
    @settings(max_examples=60, deadline=None)
    @given(points=design_point_lists(min_size=1, max_size=12))
    def test_front_is_mutually_non_dominated(self, points):
        front = pareto_front(points)
        for candidate in front:
            assert not is_dominated(candidate, front)

    @settings(max_examples=60, deadline=None)
    @given(points=design_point_lists(min_size=1, max_size=12))
    def test_every_point_dominated_by_or_on_front(self, points):
        front = pareto_front(points)
        for point in points:
            on_front = any(
                abs(point.accuracy - f.accuracy) < 1e-12
                and abs(point.power_w - f.power_w) < 1e-15
                for f in front
            )
            assert on_front or is_dominated(point, front)

    @settings(max_examples=40, deadline=None)
    @given(points=design_point_lists(min_size=1, max_size=10))
    def test_front_is_idempotent(self, points):
        front = pareto_front(points)
        assert {dp.name for dp in pareto_front(front)} == {dp.name for dp in front}


# --- signal-processing properties --------------------------------------------------------

class TestSignalProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0),
            min_size=16, max_size=16,
        )
    )
    def test_fft_matches_numpy(self, values):
        signal = np.asarray(values)
        np.testing.assert_allclose(fft_radix2(signal), np.fft.fft(signal), atol=1e-8)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50.0, max_value=50.0),
            min_size=32, max_size=32,
        )
    )
    def test_fft_parseval(self, values):
        signal = np.asarray(values)
        spectrum = fft_radix2(signal)
        time_energy = np.sum(signal ** 2)
        freq_energy = np.sum(np.abs(spectrum) ** 2) / signal.size
        assert freq_energy == pytest.approx(time_energy, rel=1e-6, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50.0, max_value=50.0),
            min_size=2, max_size=128,
        ).filter(lambda values: len(values) % 2 == 0)
    )
    def test_haar_single_level_preserves_energy(self, values):
        signal = np.asarray(values)
        approx, detail = haar_dwt_single_level(signal)
        assert np.sum(approx ** 2) + np.sum(detail ** 2) == pytest.approx(
            np.sum(signal ** 2), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-20.0, max_value=20.0),
            min_size=8, max_size=64,
        ).filter(lambda values: len(values) % 8 == 0)
    )
    def test_haar_multilevel_preserves_energy(self, values):
        signal = np.asarray(values)
        bands = haar_dwt(signal, levels=3)
        total = sum(np.sum(band ** 2) for band in bands)
        assert total == pytest.approx(np.sum(signal ** 2), rel=1e-9, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1000.0, max_value=1000.0),
            min_size=1, max_size=200,
        )
    )
    def test_statistical_features_are_finite_and_ordered(self, values):
        features = statistical_features(np.asarray(values))
        assert np.all(np.isfinite(features))
        by_name = dict(zip(
            ["mean", "std", "min", "max", "range", "rms", "mad", "zero_crossings"],
            features,
        ))
        # Allow a few ulps of slack: np.mean of identical values can land one
        # rounding step above the maximum.
        slack = 1e-9 * max(1.0, abs(by_name["max"]))
        assert by_name["min"] - slack <= by_name["mean"] <= by_name["max"] + slack
        assert by_name["range"] == pytest.approx(by_name["max"] - by_name["min"], abs=1e-9)
        assert by_name["std"] >= 0
        assert 0.0 <= by_name["zero_crossings"] <= 1.0


# --- energy accounting properties ----------------------------------------------------------

class TestEnergyAccountingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        points=design_point_lists(min_size=2, max_size=5),
        budget=st.floats(min_value=0.2, max_value=15.0),
    )
    def test_energy_breakdown_sums_to_total(self, points, budget):
        allocation = ReapAllocator().solve(
            ReapProblem(tuple(points), energy_budget_j=budget)
        )
        breakdown = allocation.energy_by_design_point()
        assert sum(breakdown.values()) == pytest.approx(allocation.energy_j, rel=1e-9)
        assert all(value >= -1e-12 for value in breakdown.values())

    @settings(max_examples=40, deadline=None)
    @given(
        accuracy=st.floats(min_value=0.01, max_value=1.0),
        power_mw=st.floats(min_value=0.1, max_value=10.0),
        duration=st.floats(min_value=0.0, max_value=7200.0),
    )
    def test_design_point_energy_scales_linearly(self, accuracy, power_mw, duration):
        dp = DesignPoint(name="X", accuracy=accuracy, power_w=power_mw * 1e-3)
        assert dp.energy_over(duration) == pytest.approx(dp.power_w * duration)
        assert dp.energy_over(2 * duration) == pytest.approx(2 * dp.energy_over(duration))
