"""Tests for the durable campaign job store (``repro.service.store``).

Covers the write-ahead contract (persist-then-ack, replay across
re-opens), exactly-once idempotent submission, the advisory lease
protocol (including dead-owner adoption), and corruption handling: a
torn journal tail is dropped cleanly and a file SQLite cannot read
raises :class:`StoreError` instead of poisoning recovery.
"""

from __future__ import annotations

import os
import socket
import sqlite3

import numpy as np
import pytest

from repro.service.requests import CampaignRequest
from repro.service.store import (
    CampaignStore,
    StoreError,
    decode_cells,
    encode_cells,
)
from repro.simulation.fleet import FleetCampaign

REQUEST = CampaignRequest(hours=24, alphas=(1.0,), baselines=("DP1",))


@pytest.fixture(scope="module")
def fleet_result():
    """One tiny fleet run whose cells are journaled by the tests."""
    scenarios, labels, policies, trace, config = REQUEST.build()
    return FleetCampaign(scenarios, config, scenario_labels=labels).run(
        policies, trace
    )


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "jobs.db")


def _cells(fleet_result):
    return [(si, pi, cell) for si, pi, cell in fleet_result]


# --- write-ahead journal --------------------------------------------------------
class TestJournal:
    def test_submit_survives_reopen(self, store_path):
        with CampaignStore(store_path) as store:
            job_id, created = store.submit(REQUEST)
        assert created
        with CampaignStore(store_path) as reopened:
            record = reopened.job(job_id)
        assert record is not None
        assert record.status == "queued"
        assert record.request is not None
        assert record.request.to_json_dict() == REQUEST.to_json_dict()

    def test_lifecycle_replay(self, store_path, fleet_result):
        with CampaignStore(store_path) as store:
            job_id, _ = store.submit(REQUEST)
            store.start(job_id, trace_hours=fleet_result.trace_hours)
            assert store.job(job_id).status == "running"
            store.shard_done(job_id, _cells(fleet_result))
            store.finish(job_id, fleet_result)
        with CampaignStore(store_path) as reopened:
            record = reopened.job(job_id)
            assert record.status == "done"
            assert record.trace_hours == fleet_result.trace_hours
            assert sorted(record.done_cells) == sorted(
                (si, pi) for si, pi, _ in fleet_result
            )

    def test_load_result_is_bit_exact(self, store_path, fleet_result):
        with CampaignStore(store_path) as store:
            job_id, _ = store.submit(REQUEST)
            store.start(job_id, trace_hours=fleet_result.trace_hours)
            store.shard_done(job_id, _cells(fleet_result))
            store.finish(job_id, fleet_result)
        with CampaignStore(store_path) as reopened:
            loaded = reopened.load_result(job_id)
        assert loaded.policy_names == fleet_result.policy_names
        assert loaded.scenario_labels == fleet_result.scenario_labels
        for si, pi, cell in loaded:
            reference = fleet_result.result(pi, si)
            np.testing.assert_array_equal(
                cell.objective_values(), reference.objective_values()
            )
            np.testing.assert_array_equal(
                cell.battery_charge_j, reference.battery_charge_j
            )

    def test_load_result_requires_done(self, store_path):
        with CampaignStore(store_path) as store:
            job_id, _ = store.submit(REQUEST)
            with pytest.raises(StoreError, match="only finished"):
                store.load_result(job_id)

    def test_fail_cancel_delete(self, store_path):
        with CampaignStore(store_path) as store:
            failed, _ = store.submit(REQUEST)
            store.fail(failed, "boom")
            cancelled, _ = store.submit(REQUEST)
            store.cancel(cancelled)
            deleted, _ = store.submit(REQUEST)
            store.delete(deleted)
            jobs = store.jobs()
        assert jobs[failed].status == "failed"
        assert jobs[failed].error == "boom"
        assert jobs[cancelled].status == "cancelled"
        assert deleted not in jobs

    def test_cancel_never_overrides_done(self, store_path, fleet_result):
        with CampaignStore(store_path) as store:
            job_id, _ = store.submit(REQUEST)
            store.start(job_id, trace_hours=fleet_result.trace_hours)
            store.shard_done(job_id, _cells(fleet_result))
            store.finish(job_id, fleet_result)
            store.cancel(job_id)  # raced in after the finish committed
            assert store.job(job_id).status == "done"

    def test_job_ids_monotonic_across_reopen(self, store_path):
        with CampaignStore(store_path) as store:
            first, _ = store.submit(REQUEST)
        with CampaignStore(store_path) as reopened:
            second, _ = reopened.submit(REQUEST)
        assert first != second
        assert int(second[1:]) > int(first[1:])


# --- idempotent submission ------------------------------------------------------
class TestIdempotency:
    def test_same_key_same_job(self, store_path):
        with CampaignStore(store_path) as store:
            first, created_first = store.submit(REQUEST, idempotency_key="k1")
            second, created_second = store.submit(REQUEST, idempotency_key="k1")
            assert (created_first, created_second) == (True, False)
            assert first == second
            # the replay journaled nothing: one submit record only
            assert store.stats.appends["submit"] == 1

    def test_key_survives_reopen(self, store_path):
        with CampaignStore(store_path) as store:
            first, _ = store.submit(REQUEST, idempotency_key="k1")
        with CampaignStore(store_path) as reopened:
            second, created = reopened.submit(REQUEST, idempotency_key="k1")
        assert second == first
        assert not created

    def test_distinct_keys_distinct_jobs(self, store_path):
        with CampaignStore(store_path) as store:
            first, _ = store.submit(REQUEST, idempotency_key="k1")
            second, _ = store.submit(REQUEST, idempotency_key="k2")
            third, _ = store.submit(REQUEST)  # keyless is never coalesced
        assert len({first, second, third}) == 3


# --- advisory leases ------------------------------------------------------------
class TestLeases:
    def test_live_owner_excludes_others(self, store_path):
        mine = CampaignStore(store_path, owner=f"{socket.gethostname()}:{os.getpid()}:a")
        other = CampaignStore(store_path, owner=f"{socket.gethostname()}:{os.getpid()}:b")
        try:
            job_id, _ = mine.submit(REQUEST)
            assert mine.acquire_lease(job_id)
            assert mine.acquire_lease(job_id)  # re-entrant for the owner
            assert not other.acquire_lease(job_id)
            assert other.stats.leases_rejected == 1
            assert not other.lease_abandoned(job_id)
            assert mine.renew_lease(job_id)
            assert not other.renew_lease(job_id)
        finally:
            mine.close()
            other.close()

    def test_dead_owner_is_stolen_immediately(self, store_path):
        dead = CampaignStore(
            store_path, owner=f"{socket.gethostname()}:999999999:dead"
        )
        living = CampaignStore(store_path)
        try:
            job_id, _ = dead.submit(REQUEST)
            assert dead.acquire_lease(job_id)
            # TTL far from expiry, but the pid does not exist on this host.
            assert living.lease_abandoned(job_id)
            assert living.acquire_lease(job_id)
            assert living.stats.leases_stolen == 1
            holder, _expires = living.lease_holder(job_id)
            assert holder == living.owner
        finally:
            dead.close()
            living.close()

    def test_release_frees_the_job(self, store_path):
        mine = CampaignStore(store_path, owner=f"{socket.gethostname()}:{os.getpid()}:a")
        other = CampaignStore(store_path, owner=f"{socket.gethostname()}:{os.getpid()}:b")
        try:
            job_id, _ = mine.submit(REQUEST)
            assert mine.acquire_lease(job_id)
            mine.release_lease(job_id)
            assert other.lease_abandoned(job_id)
            assert other.acquire_lease(job_id)
        finally:
            mine.close()
            other.close()

    def test_expired_lease_is_abandoned(self, store_path):
        # A live-pid owner whose TTL has lapsed counts as abandoned too
        # (the backstop for unkillable-but-stuck processes).
        other_host = CampaignStore(
            store_path, owner="elsewhere:1:tok", lease_ttl_s=0.05
        )
        living = CampaignStore(store_path)
        try:
            job_id, _ = other_host.submit(REQUEST)
            assert other_host.acquire_lease(job_id)
            assert not living.lease_abandoned(job_id)
            import time

            time.sleep(0.1)
            assert living.lease_abandoned(job_id)
            assert living.acquire_lease(job_id)
        finally:
            other_host.close()
            living.close()


# --- corruption -----------------------------------------------------------------
class TestCorruption:
    def _tamper(self, store_path, which: str) -> None:
        """Flip bytes in one journal record's payload, leaving its CRC."""
        connection = sqlite3.connect(store_path)
        try:
            seq = connection.execute(
                f"SELECT {which}(seq) FROM journal"
            ).fetchone()[0]
            connection.execute(
                "UPDATE journal SET payload = X'DEADBEEF' WHERE seq = ?",
                (seq,),
            )
            connection.commit()
        finally:
            connection.close()

    def test_torn_tail_is_dropped(self, store_path, fleet_result):
        with CampaignStore(store_path) as store:
            job_id, _ = store.submit(REQUEST)
            store.start(job_id, trace_hours=fleet_result.trace_hours)
            store.shard_done(job_id, _cells(fleet_result))
            store.finish(job_id, fleet_result)
        self._tamper(store_path, "MAX")  # the finish record is torn
        with CampaignStore(store_path) as reopened:
            assert reopened.stats.records_dropped == 1
            record = reopened.job(job_id)
            # The prefix stays authoritative: job reverts to running with
            # its journaled shards intact -- exactly what resume needs.
            assert record.status == "running"
            assert len(record.shard_seqs) == 1

    def test_torn_middle_record_drops_the_rest(self, store_path, fleet_result):
        with CampaignStore(store_path) as store:
            job_id, _ = store.submit(REQUEST)
            store.start(job_id, trace_hours=fleet_result.trace_hours)
            store.shard_done(job_id, _cells(fleet_result))
            store.finish(job_id, fleet_result)
        self._tamper(store_path, "MIN")  # the submit record itself is torn
        with CampaignStore(store_path) as reopened:
            # Everything from the first bad record onward is gone; a
            # half-written history never resurrects acknowledgements.
            assert reopened.stats.records_dropped == 4
            assert reopened.job(job_id) is None

    def test_unreadable_file_raises_store_error(self, tmp_path):
        path = tmp_path / "not-a-db.db"
        path.write_bytes(b"this is not a sqlite file, not even close...")
        with pytest.raises(StoreError, match="cannot open campaign store"):
            CampaignStore(str(path))

    def test_closed_store_raises_store_error(self, store_path):
        store = CampaignStore(store_path)
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.submit(REQUEST)


# --- cell frame codec -----------------------------------------------------------
class TestCellCodec:
    def test_round_trip_is_bit_exact(self, fleet_result):
        cells = _cells(fleet_result)
        decoded = decode_cells(encode_cells(cells))
        assert len(decoded) == len(cells)
        for (si, pi, original), (dsi, dpi, copy) in zip(cells, decoded):
            assert (si, pi) == (dsi, dpi)
            assert copy.policy_name == original.policy_name
            assert copy.alpha == original.alpha
            np.testing.assert_array_equal(
                copy.objective_values(), original.objective_values()
            )
            np.testing.assert_array_equal(
                copy.battery_charge_j, original.battery_charge_j
            )

    def test_truncated_payload_raises(self, fleet_result):
        payload = encode_cells(_cells(fleet_result))
        with pytest.raises(StoreError, match="truncated"):
            decode_cells(payload[: len(payload) - 7])
