"""Tests for the synthetic user population and sensor-signal models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.har.activities import ALL_ACTIVITIES, Activity
from repro.har.sensors import (
    AccelerometerSynthesizer,
    SensorSpec,
    StretchSensorSynthesizer,
)
from repro.har.users import UserProfile, generate_population, generate_user


class TestUserPopulation:
    def test_default_population_size(self):
        users = generate_population()
        assert len(users) == 14

    def test_population_is_reproducible(self):
        first = generate_population(num_users=5, seed=123)
        second = generate_population(num_users=5, seed=123)
        for a, b in zip(first, second):
            assert a == b

    def test_different_seeds_differ(self):
        first = generate_population(num_users=5, seed=1)
        second = generate_population(num_users=5, seed=2)
        assert any(a != b for a, b in zip(first, second))

    def test_users_have_distinct_parameters(self):
        users = generate_population(num_users=14, seed=7)
        gaits = {round(u.gait_frequency_hz, 6) for u in users}
        assert len(gaits) == 14

    def test_user_ids_sequential(self):
        users = generate_population(num_users=4, seed=0)
        assert [u.user_id for u in users] == [0, 1, 2, 3]
        assert users[2].name == "user02"

    def test_zero_users_rejected(self):
        with pytest.raises(ValueError):
            generate_population(num_users=0)

    def test_explicit_rng_used(self, rng):
        user = generate_user(3, rng)
        assert isinstance(user, UserProfile)
        assert user.user_id == 3

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            UserProfile(
                user_id=-1, gait_frequency_hz=2.0, walk_amplitude_g=0.5,
                jump_frequency_hz=2.5, jump_amplitude_g=1.5, sit_angle_rad=1.4,
                stand_angle_rad=0.1, lie_angle_rad=1.5, drive_vibration_g=0.05,
                stretch_gain=1.0, stretch_offset=0.1, accel_noise_g=0.05,
                stretch_noise=0.05,
            )
        with pytest.raises(ValueError):
            UserProfile(
                user_id=0, gait_frequency_hz=0.0, walk_amplitude_g=0.5,
                jump_frequency_hz=2.5, jump_amplitude_g=1.5, sit_angle_rad=1.4,
                stand_angle_rad=0.1, lie_angle_rad=1.5, drive_vibration_g=0.05,
                stretch_gain=1.0, stretch_offset=0.1, accel_noise_g=0.05,
                stretch_noise=0.05,
            )


class TestSensorSpec:
    def test_default_matches_paper(self):
        spec = SensorSpec()
        assert spec.window_s == pytest.approx(1.6)
        assert spec.sampling_hz == pytest.approx(100.0)
        assert spec.num_samples == 160

    def test_time_vector(self):
        spec = SensorSpec(window_s=0.5, sampling_hz=10)
        t = spec.time_vector()
        assert len(t) == 5
        assert t[1] - t[0] == pytest.approx(0.1)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SensorSpec(window_s=0.0)
        with pytest.raises(ValueError):
            SensorSpec(sampling_hz=-1.0)


@pytest.fixture
def user():
    return generate_population(num_users=1, seed=11)[0]


class TestAccelerometerSynthesizer:
    def test_output_shape(self, user, rng):
        synth = AccelerometerSynthesizer()
        for activity in ALL_ACTIVITIES:
            window = synth.synthesize(activity, user, rng)
            assert window.shape == (160, 3)
            assert np.all(np.isfinite(window))

    def test_standing_gravity_on_y_axis(self, user, rng):
        synth = AccelerometerSynthesizer()
        window = synth.synthesize(Activity.STAND, user, rng)
        mean = window.mean(axis=0)
        assert mean[1] > 0.85           # y close to 1 g
        assert abs(mean[0]) < 0.3       # little lateral gravity

    def test_sitting_gravity_rotated_toward_z(self, user, rng):
        synth = AccelerometerSynthesizer()
        stand = synth.synthesize(Activity.STAND, user, rng).mean(axis=0)
        sit = synth.synthesize(Activity.SIT, user, rng).mean(axis=0)
        assert sit[1] < stand[1]
        assert sit[2] > stand[2]

    def test_dynamic_activities_have_higher_variance(self, user, rng):
        synth = AccelerometerSynthesizer()
        stand_std = synth.synthesize(Activity.STAND, user, rng)[:, 1].std()
        walk_std = synth.synthesize(Activity.WALK, user, rng)[:, 1].std()
        jump_std = synth.synthesize(Activity.JUMP, user, rng)[:, 1].std()
        assert walk_std > 2 * stand_std
        assert jump_std > walk_std

    def test_gravity_magnitude_reasonable_for_static_postures(self, user, rng):
        synth = AccelerometerSynthesizer()
        for activity in (Activity.SIT, Activity.STAND, Activity.LIE_DOWN):
            window = synth.synthesize(activity, user, rng)
            magnitude = np.linalg.norm(window.mean(axis=0))
            assert 0.8 < magnitude < 1.2

    def test_reproducible_with_same_rng_state(self, user):
        synth = AccelerometerSynthesizer()
        a = synth.synthesize(Activity.WALK, user, np.random.default_rng(5))
        b = synth.synthesize(Activity.WALK, user, np.random.default_rng(5))
        np.testing.assert_allclose(a, b)


class TestStretchSensorSynthesizer:
    def test_output_shape_and_nonnegativity(self, user, rng):
        synth = StretchSensorSynthesizer()
        for activity in ALL_ACTIVITIES:
            signal = synth.synthesize(activity, user, rng)
            assert signal.shape == (160,)
            assert np.all(signal >= 0.0)
            assert np.all(np.isfinite(signal))

    def test_bent_knee_postures_read_higher_than_straight(self, user, rng):
        synth = StretchSensorSynthesizer()
        sit = synth.synthesize(Activity.SIT, user, rng).mean()
        stand = synth.synthesize(Activity.STAND, user, rng).mean()
        lie = synth.synthesize(Activity.LIE_DOWN, user, rng).mean()
        assert sit > stand + 0.2
        assert sit > lie + 0.2

    def test_walking_produces_periodic_variation(self, user, rng):
        synth = StretchSensorSynthesizer()
        walk = synth.synthesize(Activity.WALK, user, rng)
        stand = synth.synthesize(Activity.STAND, user, rng)
        # Walking adds gait-rate flexion on top of the sensor noise floor, so
        # its spread is noticeably (though not dramatically) larger.
        assert walk.std() > 1.3 * stand.std()
        assert walk.mean() > stand.mean()

    def test_custom_spec_controls_length(self, user, rng):
        synth = StretchSensorSynthesizer(SensorSpec(window_s=0.8, sampling_hz=50))
        signal = synth.synthesize(Activity.WALK, user, rng)
        assert signal.shape == (40,)
