"""Tests for the HAR design space and its characterisation."""

from __future__ import annotations

import pytest

from repro.core.pareto import pareto_front
from repro.har.config import HARConfig
from repro.har.design_space import (
    DESIGN_SPACE_SPECS,
    DesignSpaceExplorer,
    PARETO_DESIGN_POINT_NAMES,
    pareto_design_points,
    table2_specs,
)


class TestDesignSpaceSpecs:
    def test_twenty_four_configurations(self):
        assert len(DESIGN_SPACE_SPECS) == 24

    def test_names_are_unique(self):
        names = [name for name, _ in DESIGN_SPACE_SPECS]
        assert len(set(names)) == 24

    def test_table2_specs_are_the_five_pareto_names(self):
        specs = table2_specs()
        assert [name for name, _ in specs] == list(PARETO_DESIGN_POINT_NAMES)

    def test_every_spec_is_a_valid_config(self):
        for name, config in DESIGN_SPACE_SPECS:
            assert isinstance(config, HARConfig)
            assert config.features.uses_accelerometer or config.features.uses_stretch

    def test_dp1_spec_matches_table2_description(self):
        specs = dict(DESIGN_SPACE_SPECS)
        dp1 = specs["DP1"]
        assert dp1.features.accel_axes == ("x", "y", "z")
        assert dp1.features.sensing_fraction == 1.0
        assert dp1.features.accel_features == "statistical"
        assert dp1.features.stretch_features == "fft16"

    def test_dp5_spec_is_stretch_only(self):
        specs = dict(DESIGN_SPACE_SPECS)
        dp5 = specs["DP5"]
        assert not dp5.features.uses_accelerometer
        assert dp5.features.stretch_features == "fft16"

    def test_sensing_fraction_knob_covered(self):
        fractions = {config.features.sensing_fraction for _, config in DESIGN_SPACE_SPECS}
        assert {1.0, 0.75, 0.5, 0.4} <= fractions

    def test_classifier_structures_covered(self):
        hidden = {config.hidden_layers for _, config in DESIGN_SPACE_SPECS}
        assert {(12,), (8,), ()} <= hidden

    def test_hare_config_structure_string(self):
        config = HARConfig(hidden_layers=(12,))
        assert config.classifier_structure == "inx12x7"
        assert "NN" in config.describe()


class TestDesignSpaceExplorer:
    """Characterisation tests on the small session dataset (kept fast)."""

    @pytest.fixture(scope="class")
    def characterized(self, request):
        # Build on the session-scoped dataset via request to keep scope legal.
        small_dataset = request.getfixturevalue("small_dataset")
        fast_training = request.getfixturevalue("fast_training_config")
        explorer = DesignSpaceExplorer(small_dataset, training_config=fast_training)
        return explorer.characterize_all(table2_specs())

    def test_characterizes_all_requested_points(self, characterized):
        assert [item.name for item in characterized] == list(PARETO_DESIGN_POINT_NAMES)

    def test_accuracies_are_valid_fractions(self, characterized):
        for item in characterized:
            assert 0.0 <= item.test_accuracy <= 1.0
            assert 0.0 <= item.validation_accuracy <= 1.0

    def test_multi_sensor_points_beat_stretch_only(self, characterized):
        by_name = {item.name: item for item in characterized}
        for name in ("DP1", "DP2", "DP3", "DP4"):
            assert by_name[name].test_accuracy > by_name["DP5"].test_accuracy + 0.05

    def test_power_ordering_matches_paper(self, characterized):
        powers = [item.characterization.average_power_w for item in characterized]
        assert powers == sorted(powers, reverse=True)

    def test_energy_close_to_published_values(self, characterized):
        published = {"DP1": 4.48, "DP2": 3.72, "DP3": 2.94, "DP4": 2.66, "DP5": 1.93}
        for item in characterized:
            assert item.characterization.total_energy_mj == pytest.approx(
                published[item.name], rel=0.15
            )

    def test_to_design_point_carries_metadata(self, characterized):
        dp = characterized[0].to_design_point()
        assert dp.name == "DP1"
        assert dp.execution is not None
        assert dp.energy_breakdown is not None
        assert "num_features" in dp.metadata

    def test_design_points_usable_by_optimizer(self, characterized):
        from repro.core.allocator import ReapAllocator
        from repro.core.problem import ReapProblem

        points = tuple(item.to_design_point() for item in characterized)
        allocation = ReapAllocator().solve(ReapProblem(points, energy_budget_j=5.0))
        assert allocation.active_time_s > 0


class TestParetoSelection:
    def test_pareto_design_points_filters_dominated(self, table2_points):
        front = pareto_design_points(table2_points)
        assert {dp.name for dp in front} == {dp.name for dp in pareto_front(table2_points)}

    def test_max_points_cap(self, table2_points):
        subset = pareto_design_points(table2_points, max_points=3)
        assert len(subset) == 3
