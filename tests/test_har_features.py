"""Tests for the feature-generation stack (statistics, FFT, DWT, pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.har.activities import Activity
from repro.har.config import FeatureConfig
from repro.har.features.dwt import (
    dwt_feature_names,
    dwt_features,
    dwt_features_multichannel,
    haar_dwt,
    haar_dwt_single_level,
)
from repro.har.features.fft import (
    block_decimate,
    fft_feature_names,
    fft_magnitudes,
    fft_radix2,
    is_power_of_two,
)
from repro.har.features.pipeline import FeatureExtractor, FeatureMatrix, standardize
from repro.har.features.statistical import (
    STATISTICAL_FEATURE_NAMES,
    statistical_feature_names,
    statistical_features,
    statistical_features_multichannel,
)


class TestStatisticalFeatures:
    def test_feature_count_and_names(self):
        features = statistical_features(np.arange(10.0))
        assert features.shape == (len(STATISTICAL_FEATURE_NAMES),)
        names = statistical_feature_names(["accel_y"])
        assert len(names) == len(STATISTICAL_FEATURE_NAMES)
        assert names[0] == "accel_y_mean"

    def test_known_values_for_simple_signal(self):
        signal = np.array([1.0, 2.0, 3.0, 4.0])
        features = statistical_features(signal)
        by_name = dict(zip(STATISTICAL_FEATURE_NAMES, features))
        assert by_name["mean"] == pytest.approx(2.5)
        assert by_name["min"] == pytest.approx(1.0)
        assert by_name["max"] == pytest.approx(4.0)
        assert by_name["range"] == pytest.approx(3.0)
        assert by_name["rms"] == pytest.approx(np.sqrt(np.mean(signal ** 2)))

    def test_constant_signal_has_zero_spread(self):
        features = statistical_features(np.full(50, 3.7))
        by_name = dict(zip(STATISTICAL_FEATURE_NAMES, features))
        assert by_name["std"] == pytest.approx(0.0)
        assert by_name["range"] == pytest.approx(0.0)
        assert by_name["zero_crossings"] == pytest.approx(0.0)

    def test_alternating_signal_has_max_zero_crossings(self):
        signal = np.array([1.0, -1.0] * 20)
        by_name = dict(zip(STATISTICAL_FEATURE_NAMES, statistical_features(signal)))
        assert by_name["zero_crossings"] == pytest.approx(1.0)

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            statistical_features(np.array([]))

    def test_multichannel_concatenation(self):
        signals = np.column_stack([np.arange(10.0), np.ones(10)])
        features = statistical_features_multichannel(signals)
        assert features.shape == (2 * len(STATISTICAL_FEATURE_NAMES),)

    def test_multichannel_rejects_3d(self):
        with pytest.raises(ValueError):
            statistical_features_multichannel(np.zeros((2, 2, 2)))


class TestFFT:
    def test_power_of_two_detection(self):
        assert is_power_of_two(16)
        assert is_power_of_two(1)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 64])
    def test_matches_numpy_fft(self, n, rng):
        signal = rng.normal(size=n)
        ours = fft_radix2(signal)
        reference = np.fft.fft(signal)
        np.testing.assert_allclose(ours, reference, atol=1e-10)

    def test_complex_input(self, rng):
        signal = rng.normal(size=16) + 1j * rng.normal(size=16)
        np.testing.assert_allclose(fft_radix2(signal), np.fft.fft(signal), atol=1e-10)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft_radix2(np.arange(10))

    def test_dc_signal_concentrates_in_bin_zero(self):
        magnitudes = fft_magnitudes(np.full(160, 2.0), n_fft=16)
        assert magnitudes[0] == pytest.approx(32.0)
        assert np.all(magnitudes[1:] < 1e-9)

    def test_periodic_signal_peaks_at_expected_bin(self):
        # 2 Hz sine over a 1.6 s window sampled at 100 Hz; after decimation to
        # 16 samples spanning 1.6 s, the tone should land in bin round(2*1.6)=3.
        t = np.arange(160) / 100.0
        signal = np.sin(2 * np.pi * 2.0 * t)
        magnitudes = fft_magnitudes(signal, n_fft=16)
        assert int(np.argmax(magnitudes[1:]) + 1) == 3

    def test_frame_average_mode(self, rng):
        signal = rng.normal(size=160)
        magnitudes = fft_magnitudes(signal, n_fft=16, mode="frame_average")
        assert magnitudes.shape == (9,)
        assert np.all(magnitudes >= 0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            fft_magnitudes(np.ones(32), mode="welch")

    def test_short_signal_padded(self):
        magnitudes = fft_magnitudes(np.ones(5), n_fft=16)
        assert magnitudes.shape == (9,)

    def test_block_decimate_preserves_mean(self, rng):
        signal = rng.normal(size=160)
        decimated = block_decimate(signal, 16)
        assert decimated.shape == (16,)
        assert decimated.mean() == pytest.approx(signal.mean(), abs=1e-12)

    def test_block_decimate_short_signal_zero_pads(self):
        decimated = block_decimate(np.array([1.0, 2.0]), 4)
        np.testing.assert_allclose(decimated, [1.0, 2.0, 0.0, 0.0])

    def test_feature_names(self):
        names = fft_feature_names("stretch", n_fft=16)
        assert len(names) == 9
        assert names[0] == "stretch_fft16_bin0"


class TestDWT:
    def test_single_level_shapes(self):
        approx, detail = haar_dwt_single_level(np.arange(8.0))
        assert approx.shape == (4,)
        assert detail.shape == (4,)

    def test_single_level_energy_preservation(self, rng):
        signal = rng.normal(size=64)
        approx, detail = haar_dwt_single_level(signal)
        assert np.sum(approx ** 2) + np.sum(detail ** 2) == pytest.approx(
            np.sum(signal ** 2)
        )

    def test_odd_length_padded(self):
        approx, detail = haar_dwt_single_level(np.arange(7.0))
        assert approx.shape == (4,)

    def test_constant_signal_has_zero_detail(self):
        _, detail = haar_dwt_single_level(np.full(16, 5.0))
        np.testing.assert_allclose(detail, 0.0, atol=1e-12)

    def test_multilevel_band_count(self, rng):
        bands = haar_dwt(rng.normal(size=64), levels=3)
        assert len(bands) == 4  # 3 detail bands + approximation

    def test_multilevel_stops_when_signal_too_short(self):
        bands = haar_dwt(np.arange(4.0), levels=5)
        assert len(bands) <= 4

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            haar_dwt(np.array([]))
        with pytest.raises(ValueError):
            haar_dwt_single_level(np.array([]))

    def test_feature_vector_length_constant(self, rng):
        long_features = dwt_features(rng.normal(size=160), levels=3)
        short_features = dwt_features(rng.normal(size=8), levels=3)
        assert long_features.shape == short_features.shape == (8,)

    def test_feature_names_match_dimension(self):
        names = dwt_feature_names(["accel_x", "accel_y"], levels=3)
        features = dwt_features_multichannel(np.random.default_rng(0).normal(size=(64, 2)))
        assert len(names) == features.shape[0]

    def test_dynamic_signal_has_more_detail_energy(self, rng):
        t = np.arange(160) / 100.0
        flat = np.ones(160)
        wiggle = np.sin(2 * np.pi * 10 * t)
        flat_features = dwt_features(flat)
        wiggle_features = dwt_features(wiggle)
        # First detail-band energy (index 0) should be larger for the wiggle.
        assert wiggle_features[0] > flat_features[0]


class TestFeatureConfigAndPipeline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FeatureConfig(accel_axes=("w",))
        with pytest.raises(ValueError):
            FeatureConfig(accel_axes=("x", "x"))
        with pytest.raises(ValueError):
            FeatureConfig(sensing_fraction=0.0)
        with pytest.raises(ValueError):
            FeatureConfig(accel_features="pca")
        with pytest.raises(ValueError):
            FeatureConfig(stretch_features="wavelet")
        with pytest.raises(ValueError):
            FeatureConfig(accel_axes=(), stretch_features="none")
        with pytest.raises(ValueError):
            FeatureConfig(accel_axes=("y",), accel_features="none")

    def test_config_auto_disables_accel_features_without_axes(self):
        config = FeatureConfig(accel_axes=(), accel_features="statistical")
        assert config.accel_features == "none"
        assert not config.uses_accelerometer

    def test_describe_mentions_components(self):
        config = FeatureConfig(accel_axes=("x", "y"), sensing_fraction=0.5)
        text = config.describe()
        assert "XY" in text
        assert "50%" in text
        assert "16-FFT" in text

    @pytest.fixture
    def window(self, small_dataset):
        return small_dataset[0]

    def test_extractor_dimension_matches_names(self, window):
        configs = [
            FeatureConfig(),
            FeatureConfig(accel_axes=("y",)),
            FeatureConfig(accel_axes=(), stretch_features="fft16"),
            FeatureConfig(accel_features="dwt"),
            FeatureConfig(stretch_features="statistical"),
            FeatureConfig(accel_axes=("x", "y"), sensing_fraction=0.5),
        ]
        for config in configs:
            extractor = FeatureExtractor(config)
            vector = extractor.extract(window)
            assert vector.shape == (extractor.num_features,)
            assert len(extractor.feature_names()) == extractor.num_features
            assert np.all(np.isfinite(vector))

    def test_dp1_feature_dimension(self, window):
        # 3 axes x 8 statistics + 9 FFT bins = 33 features
        extractor = FeatureExtractor(FeatureConfig())
        assert extractor.num_features == 33

    def test_dp5_feature_dimension(self, window):
        extractor = FeatureExtractor(FeatureConfig(accel_axes=(), stretch_features="fft16"))
        assert extractor.num_features == 9

    def test_sensing_fraction_changes_accel_features_only(self, window):
        full = FeatureExtractor(FeatureConfig()).extract(window)
        half = FeatureExtractor(FeatureConfig(sensing_fraction=0.5)).extract(window)
        assert full.shape == half.shape
        # The stretch FFT bins (last 9) are identical, accel statistics differ.
        np.testing.assert_allclose(full[-9:], half[-9:])
        assert not np.allclose(full[:-9], half[:-9])

    def test_extract_dataset_shapes(self, small_dataset):
        extractor = FeatureExtractor(FeatureConfig(accel_axes=("y",)))
        matrix = extractor.extract_dataset(small_dataset)
        assert isinstance(matrix, FeatureMatrix)
        assert matrix.num_windows == len(small_dataset)
        assert matrix.num_features == extractor.num_features
        assert matrix.labels.shape == (len(small_dataset),)
        assert matrix.user_ids.shape == (len(small_dataset),)

    def test_feature_matrix_subset(self, small_dataset):
        extractor = FeatureExtractor(FeatureConfig(accel_axes=("y",)))
        matrix = extractor.extract_dataset(small_dataset)
        subset = matrix.subset([0, 5, 10])
        assert subset.num_windows == 3
        np.testing.assert_allclose(subset.features[1], matrix.features[5])

    def test_feature_matrix_validation(self):
        with pytest.raises(ValueError):
            FeatureMatrix(
                features=np.zeros((3, 2)),
                labels=np.zeros(4),
                feature_names=["a", "b"],
                user_ids=np.zeros(3),
            )
        with pytest.raises(ValueError):
            FeatureMatrix(
                features=np.zeros((3, 2)),
                labels=np.zeros(3),
                feature_names=["a"],
                user_ids=np.zeros(3),
            )

    def test_standardize_train_statistics(self, rng):
        train = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        test = rng.normal(loc=5.0, scale=3.0, size=(50, 4))
        train_std, test_std = standardize(train, test)
        np.testing.assert_allclose(train_std.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(train_std.std(axis=0), 1.0, atol=1e-10)
        assert test_std.shape == test.shape

    def test_standardize_constant_column_safe(self):
        train = np.column_stack([np.ones(10), np.arange(10.0)])
        (standardized,) = standardize(train)
        assert np.all(np.isfinite(standardized))

    def test_features_separate_activities(self, small_dataset):
        """Sanity: mean stretch FFT DC bin differs between sit and stand."""
        extractor = FeatureExtractor(
            FeatureConfig(accel_axes=(), stretch_features="fft16")
        )
        sit = [
            extractor.extract(w)[0]
            for w in small_dataset.windows_for_activity(Activity.SIT)[:20]
        ]
        stand = [
            extractor.extract(w)[0]
            for w in small_dataset.windows_for_activity(Activity.STAND)[:20]
        ]
        assert np.mean(sit) > np.mean(stand)
