"""Tests for the design-point abstraction."""

from __future__ import annotations

import math

import pytest

from repro.core.design_point import (
    DesignPoint,
    EnergyBreakdown,
    ExecutionBreakdown,
    sort_by_accuracy,
    sort_by_power,
    validate_design_points,
)


class TestExecutionBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = ExecutionBreakdown(0.83, 3.83, 1.05)
        assert breakdown.total_ms == pytest.approx(5.71)

    def test_scaled_multiplies_every_component(self):
        breakdown = ExecutionBreakdown(1.0, 2.0, 3.0).scaled(0.5)
        assert breakdown.accel_features_ms == pytest.approx(0.5)
        assert breakdown.stretch_features_ms == pytest.approx(1.0)
        assert breakdown.classifier_ms == pytest.approx(1.5)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            ExecutionBreakdown(1.0, 1.0, 1.0).scaled(-1.0)


class TestEnergyBreakdown:
    def test_total_includes_communication(self):
        breakdown = EnergyBreakdown(mcu_mj=2.0, sensor_mj=1.5, communication_mj=0.4)
        assert breakdown.total_mj == pytest.approx(3.9)

    def test_as_dict_contains_total(self):
        breakdown = EnergyBreakdown(mcu_mj=1.0, sensor_mj=1.0)
        data = breakdown.as_dict()
        assert data["total_mj"] == pytest.approx(2.0)
        assert data["communication_mj"] == pytest.approx(0.0)


class TestDesignPointValidation:
    def test_accuracy_must_be_fraction(self):
        with pytest.raises(ValueError, match="accuracy"):
            DesignPoint(name="bad", accuracy=94.0, power_w=1e-3)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="power"):
            DesignPoint(name="bad", accuracy=0.9, power_w=-1.0)

    def test_non_finite_power_rejected(self):
        with pytest.raises(ValueError):
            DesignPoint(name="bad", accuracy=0.9, power_w=math.inf)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            DesignPoint(name="", accuracy=0.9, power_w=1e-3)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            DesignPoint(name="bad", accuracy=0.9, power_w=1e-3, energy_per_activity_j=-1.0)

    def test_zero_accuracy_allowed(self):
        dp = DesignPoint(name="zero", accuracy=0.0, power_w=1e-3)
        assert dp.accuracy == 0.0


class TestDesignPointDerivedQuantities:
    def test_power_mw_conversion(self):
        dp = DesignPoint(name="x", accuracy=0.9, power_w=2.76e-3)
        assert dp.power_mw == pytest.approx(2.76)

    def test_energy_per_activity_prefers_measured_value(self):
        dp = DesignPoint(
            name="x", accuracy=0.9, power_w=2.76e-3,
            energy_per_activity_j=4.48e-3, activity_period_s=1.6,
        )
        assert dp.energy_per_activity_mj == pytest.approx(4.48)

    def test_energy_per_activity_falls_back_to_power(self):
        dp = DesignPoint(name="x", accuracy=0.9, power_w=2.0e-3, activity_period_s=1.6)
        assert dp.energy_per_activity == pytest.approx(3.2e-3)

    def test_energy_over_duration(self):
        dp = DesignPoint(name="x", accuracy=0.9, power_w=2.0e-3)
        assert dp.energy_over(3600.0) == pytest.approx(7.2)

    def test_energy_over_negative_duration_rejected(self):
        dp = DesignPoint(name="x", accuracy=0.9, power_w=2.0e-3)
        with pytest.raises(ValueError):
            dp.energy_over(-1.0)

    def test_weighted_accuracy_alpha_one_is_accuracy(self):
        dp = DesignPoint(name="x", accuracy=0.9, power_w=1e-3)
        assert dp.weighted_accuracy(1.0) == pytest.approx(0.9)

    def test_weighted_accuracy_alpha_zero_is_one(self):
        dp = DesignPoint(name="x", accuracy=0.9, power_w=1e-3)
        assert dp.weighted_accuracy(0.0) == pytest.approx(1.0)

    def test_weighted_accuracy_zero_accuracy_alpha_zero(self):
        dp = DesignPoint(name="x", accuracy=0.0, power_w=1e-3)
        assert dp.weighted_accuracy(0.0) == pytest.approx(1.0)

    def test_weighted_accuracy_large_alpha_shrinks(self):
        dp = DesignPoint(name="x", accuracy=0.9, power_w=1e-3)
        assert dp.weighted_accuracy(8.0) == pytest.approx(0.9 ** 8)

    def test_accuracy_percent(self):
        dp = DesignPoint(name="x", accuracy=0.94, power_w=1e-3)
        assert dp.accuracy_percent == pytest.approx(94.0)


class TestDominance:
    def test_strictly_better_dominates(self):
        better = DesignPoint(name="a", accuracy=0.9, power_w=1e-3)
        worse = DesignPoint(name="b", accuracy=0.8, power_w=2e-3)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = DesignPoint(name="a", accuracy=0.9, power_w=1e-3)
        b = DesignPoint(name="b", accuracy=0.9, power_w=1e-3)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_do_not_dominate_each_other(self):
        accurate = DesignPoint(name="a", accuracy=0.95, power_w=3e-3)
        frugal = DesignPoint(name="b", accuracy=0.7, power_w=1e-3)
        assert not accurate.dominates(frugal)
        assert not frugal.dominates(accurate)

    def test_dominates_with_equal_power_higher_accuracy(self):
        a = DesignPoint(name="a", accuracy=0.95, power_w=1e-3)
        b = DesignPoint(name="b", accuracy=0.9, power_w=1e-3)
        assert a.dominates(b)


class TestHelpers:
    def test_with_name_preserves_values(self):
        dp = DesignPoint(name="orig", accuracy=0.9, power_w=1e-3, description="d")
        renamed = dp.with_name("new")
        assert renamed.name == "new"
        assert renamed.accuracy == dp.accuracy
        assert renamed.power_w == dp.power_w
        assert renamed.description == dp.description

    def test_summary_contains_core_fields(self):
        dp = DesignPoint(name="x", accuracy=0.94, power_w=2.76e-3,
                         energy_per_activity_j=4.48e-3)
        summary = dp.summary()
        assert summary["accuracy_percent"] == pytest.approx(94.0)
        assert summary["power_mw"] == pytest.approx(2.76)
        assert summary["energy_per_activity_mj"] == pytest.approx(4.48)

    def test_validate_rejects_empty_collection(self):
        with pytest.raises(ValueError):
            validate_design_points([])

    def test_validate_rejects_duplicate_names(self):
        points = [
            DesignPoint(name="dup", accuracy=0.9, power_w=1e-3),
            DesignPoint(name="dup", accuracy=0.8, power_w=2e-3),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            validate_design_points(points)

    def test_sort_by_power_descending(self, table2_points):
        ordered = sort_by_power(table2_points)
        powers = [dp.power_w for dp in ordered]
        assert powers == sorted(powers, reverse=True)
        assert ordered[0].name == "DP1"

    def test_sort_by_accuracy_descending(self, table2_points):
        ordered = sort_by_accuracy(table2_points)
        accuracies = [dp.accuracy for dp in ordered]
        assert accuracies == sorted(accuracies, reverse=True)
        assert ordered[-1].name == "DP5"
