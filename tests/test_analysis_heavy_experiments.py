"""Scaled-down runs of the heavyweight experiment runners.

The full Table 2 / Figure 3 / Figure 7 experiments are exercised by the
benchmark suite; here they run at a much smaller scale so the plumbing (row
construction, extras, CSV round-trips) is covered by the fast test-suite
too.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_figure3_experiment,
    run_figure7_experiment,
    run_table2_experiment,
)
from repro.har.classifier.train import TrainingConfig
from repro.har.design_space import DESIGN_SPACE_SPECS


TINY_TRAINING = TrainingConfig(max_epochs=12, patience=6, batch_size=32)


class TestTable2Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2_experiment(
            num_windows=280, num_users=6, seed=3, training_config=TINY_TRAINING
        )

    def test_five_rows_in_dp_order(self, result):
        assert [row[0] for row in result.rows] == ["DP1", "DP2", "DP3", "DP4", "DP5"]

    def test_headers_pair_measured_and_paper_columns(self, result):
        assert "accuracy_%" in result.headers
        assert "paper_accuracy_%" in result.headers
        assert len(result.headers) == len(result.rows[0])

    def test_energy_columns_close_to_paper(self, result):
        energy_index = result.headers.index("energy_mJ")
        paper_index = result.headers.index("paper_energy_mJ")
        for row in result.rows:
            assert row[energy_index] == pytest.approx(row[paper_index], rel=0.2)

    def test_extras_expose_design_points(self, result):
        points = result.extras["design_points"]
        assert len(points) == 5
        assert result.extras["dataset_windows"] == 280

    def test_csv_roundtrip(self, result, tmp_path):
        path = tmp_path / "table2.csv"
        result.to_csv(str(path))
        assert path.exists()
        assert "DP1" in path.read_text()


class TestFigure3Experiment:
    def test_subset_of_design_space(self):
        specs = DESIGN_SPACE_SPECS[:6]
        result = run_figure3_experiment(
            num_windows=240, num_users=5, seed=4,
            training_config=TINY_TRAINING, specs=specs,
        )
        assert result.extras["num_design_points"] == 6
        assert len(result.rows) == 6
        pareto_flags = result.column("pareto_optimal")
        assert any(pareto_flags)
        # Rows are sorted by energy per activity.
        energies = result.column("energy_per_activity_mJ")
        assert energies == sorted(energies)


class TestFigure7Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure7_experiment(alphas=(1.0,), month=9, seed=2016)

    def test_one_row_per_alpha(self, result):
        assert len(result.rows) == 1
        assert result.rows[0][0] == pytest.approx(1.0)

    def test_reap_never_loses_to_any_baseline(self, result):
        headers = result.headers
        row = result.rows[0]
        for baseline in ("DP1", "DP3", "DP5"):
            assert row[headers.index(f"vs_{baseline}_min")] >= 1.0 - 1e-9
            assert row[headers.index(f"vs_{baseline}_mean")] >= 1.0

    def test_detail_extras_structure(self, result):
        detail = result.extras["detail"]
        assert set(detail[1.0]) == {"DP1", "DP3", "DP5"}
        assert result.extras["trace_hours"] == 720
