"""Tests for the objective function and the allocation/schedule containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import (
    accuracy_weights,
    active_time_fraction,
    expected_accuracy,
    objective_value,
    validate_alpha,
)
from repro.core.schedule import AllocationSeries, TimeAllocation


class TestObjective:
    def test_alpha_validation(self):
        assert validate_alpha(2) == 2.0
        with pytest.raises(ValueError):
            validate_alpha(-0.1)
        with pytest.raises(ValueError):
            validate_alpha(float("nan"))

    def test_accuracy_weights_alpha_one(self, simple_points):
        weights = accuracy_weights(simple_points, 1.0)
        assert weights == pytest.approx([0.9, 0.8, 0.6])

    def test_accuracy_weights_alpha_zero(self, simple_points):
        weights = accuracy_weights(simple_points, 0.0)
        assert weights == pytest.approx([1.0, 1.0, 1.0])

    def test_objective_value_manual(self, simple_points):
        # J = (0.9*1800 + 0.8*900 + 0.6*0) / 3600
        value = objective_value([1800.0, 900.0, 0.0], simple_points, 1.0, 3600.0)
        assert value == pytest.approx((0.9 * 1800 + 0.8 * 900) / 3600)

    def test_objective_alpha_zero_is_active_fraction(self, simple_points):
        times = [1000.0, 500.0, 200.0]
        value = objective_value(times, simple_points, 0.0, 3600.0)
        assert value == pytest.approx(active_time_fraction(times, 3600.0))

    def test_expected_accuracy_equals_alpha_one(self, simple_points):
        times = [1200.0, 600.0, 300.0]
        assert expected_accuracy(times, simple_points, 3600.0) == pytest.approx(
            objective_value(times, simple_points, 1.0, 3600.0)
        )

    def test_wrong_length_rejected(self, simple_points):
        with pytest.raises(ValueError):
            objective_value([1.0], simple_points, 1.0, 3600.0)

    def test_non_positive_period_rejected(self, simple_points):
        with pytest.raises(ValueError):
            objective_value([1.0, 1.0, 1.0], simple_points, 1.0, 0.0)

    def test_objective_increases_with_alpha_below_one_accuracy(self, simple_points):
        # For accuracies < 1, a^alpha decreases as alpha grows.
        times = [1200.0, 1200.0, 1200.0]
        low = objective_value(times, simple_points, 0.5, 3600.0)
        high = objective_value(times, simple_points, 2.0, 3600.0)
        assert low > high


class TestTimeAllocation:
    @pytest.fixture
    def allocation(self, simple_points):
        return TimeAllocation(
            design_points=tuple(simple_points),
            times_s=(1800.0, 900.0, 0.0),
            off_time_s=900.0,
            period_s=3600.0,
            alpha=1.0,
            off_power_w=5e-5,
            budget_j=10.0,
        )

    def test_active_time(self, allocation):
        assert allocation.active_time_s == pytest.approx(2700.0)
        assert allocation.active_fraction == pytest.approx(0.75)
        assert allocation.total_time_s == pytest.approx(3600.0)

    def test_expected_accuracy(self, allocation):
        expected = (0.9 * 1800 + 0.8 * 900) / 3600
        assert allocation.expected_accuracy == pytest.approx(expected)

    def test_objective_at_various_alpha(self, allocation):
        assert allocation.objective == pytest.approx(allocation.objective_at(1.0))
        assert allocation.objective_at(0.0) == pytest.approx(0.75)

    def test_energy_accounting(self, allocation):
        active = 3.0e-3 * 1800 + 2.0e-3 * 900
        off = 5e-5 * 900
        assert allocation.active_energy_j == pytest.approx(active)
        assert allocation.off_energy_j == pytest.approx(off)
        assert allocation.energy_j == pytest.approx(active + off)

    def test_energy_by_design_point(self, allocation):
        breakdown = allocation.energy_by_design_point()
        assert breakdown["HI"] == pytest.approx(3.0e-3 * 1800)
        assert breakdown["LO"] == pytest.approx(0.0)
        assert "off" in breakdown

    def test_time_and_share_lookup(self, allocation):
        assert allocation.time_for("MID") == pytest.approx(900.0)
        assert allocation.share_for("HI") == pytest.approx(1800 / 2700)
        with pytest.raises(KeyError):
            allocation.time_for("nope")

    def test_activities_processed(self, allocation):
        # activity window defaults to 1.6 s for the simple points
        assert allocation.activities_processed() == pytest.approx(2700 / 1.6)

    def test_check_passes_for_consistent_allocation(self, allocation):
        allocation.check()

    def test_check_detects_time_violation(self, simple_points):
        allocation = TimeAllocation(
            design_points=tuple(simple_points),
            times_s=(1800.0, 900.0, 0.0),
            off_time_s=0.0,
            period_s=3600.0,
        )
        with pytest.raises(ValueError, match="time constraint"):
            allocation.check()

    def test_check_detects_energy_violation(self, allocation):
        with pytest.raises(ValueError, match="energy"):
            allocation.check(budget_j=1.0)

    def test_all_off_constructor(self, simple_points):
        allocation = TimeAllocation.all_off(simple_points, period_s=3600.0)
        assert allocation.active_time_s == 0.0
        assert allocation.off_time_s == pytest.approx(3600.0)
        assert allocation.expected_accuracy == 0.0

    def test_single_point_constructor(self, simple_points):
        allocation = TimeAllocation.single_point(
            simple_points, "LO", active_time_s=1200.0, period_s=3600.0
        )
        assert allocation.time_for("LO") == pytest.approx(1200.0)
        assert allocation.time_for("HI") == 0.0
        assert allocation.off_time_s == pytest.approx(2400.0)

    def test_single_point_unknown_name(self, simple_points):
        with pytest.raises(KeyError):
            TimeAllocation.single_point(simple_points, "nope", 100.0, 3600.0)

    def test_single_point_time_bounds(self, simple_points):
        with pytest.raises(ValueError):
            TimeAllocation.single_point(simple_points, "LO", 5000.0, 3600.0)

    def test_negative_time_rejected(self, simple_points):
        with pytest.raises(ValueError):
            TimeAllocation(
                design_points=tuple(simple_points),
                times_s=(-1.0, 0.0, 0.0),
                off_time_s=3601.0,
                period_s=3600.0,
            )

    def test_mismatched_lengths_rejected(self, simple_points):
        with pytest.raises(ValueError):
            TimeAllocation(
                design_points=tuple(simple_points),
                times_s=(1.0, 2.0),
                off_time_s=3597.0,
                period_s=3600.0,
            )

    def test_scaled_preserves_duty_cycle_and_objective(self, allocation):
        scaled = allocation.scaled(0.5)
        assert scaled.period_s == pytest.approx(1800.0)
        assert scaled.active_fraction == pytest.approx(allocation.active_fraction)
        assert scaled.objective == pytest.approx(allocation.objective)

    def test_scaled_rejects_non_positive(self, allocation):
        with pytest.raises(ValueError):
            allocation.scaled(0.0)


class TestAllocationSeries:
    def test_aggregates(self, simple_points):
        series = AllocationSeries()
        for active in (1200.0, 2400.0):
            allocation = TimeAllocation.single_point(
                simple_points, "MID", active, period_s=3600.0
            )
            series.append(allocation, budget_j=5.0, label=f"h{active}")
        assert len(series) == 2
        assert series.total_active_time_s == pytest.approx(3600.0)
        assert series.mean_expected_accuracy == pytest.approx(
            np.mean([a.expected_accuracy for a in series])
        )
        assert series.total_energy_j == pytest.approx(sum(a.energy_j for a in series))

    def test_objective_values_with_alpha_override(self, simple_points):
        series = AllocationSeries()
        series.append(
            TimeAllocation.single_point(simple_points, "HI", 3600.0, 3600.0, alpha=1.0)
        )
        values_alpha2 = series.objective_values(alpha=2.0)
        assert values_alpha2[0] == pytest.approx(0.9 ** 2)
        assert series.mean_objective(alpha=2.0) == pytest.approx(0.9 ** 2)

    def test_time_share_by_design_point(self, simple_points):
        series = AllocationSeries()
        series.append(TimeAllocation.single_point(simple_points, "HI", 1800.0, 3600.0))
        series.append(TimeAllocation.single_point(simple_points, "LO", 1800.0, 3600.0))
        shares = series.time_share_by_design_point()
        assert shares["HI"] == pytest.approx(0.5)
        assert shares["LO"] == pytest.approx(0.5)
        assert shares["MID"] == pytest.approx(0.0)

    def test_empty_series_metrics(self):
        series = AllocationSeries()
        assert series.mean_expected_accuracy == 0.0
        assert series.mean_objective() == 0.0
        assert series.total_active_time_s == 0.0
