"""Tests for the LP sensitivity analysis (marginal value of energy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ReapProblem
from repro.core.sensitivity import (
    energy_starvation_level,
    marginal_value_of_energy,
    value_curve,
)


@pytest.fixture
def problem(table2_points):
    return ReapProblem(tuple(table2_points), energy_budget_j=5.0, alpha=1.0)


class TestMarginalValue:
    def test_positive_in_constrained_region(self, problem):
        assert marginal_value_of_energy(problem.with_budget(3.0)) > 0.0

    def test_zero_beyond_saturation(self, problem):
        assert marginal_value_of_energy(problem.with_budget(11.0)) == pytest.approx(0.0, abs=1e-9)

    def test_matches_known_slope_in_region1(self, problem):
        """In Region 1 only DP5 runs, so dJ/dEb = a5 / (P5 - Poff) / TP."""
        slope = marginal_value_of_energy(problem.with_budget(2.0))
        dp5 = next(dp for dp in problem.design_points if dp.name == "DP5")
        expected = dp5.accuracy / (dp5.power_w - problem.off_power_w) / problem.period_s
        assert slope == pytest.approx(expected, rel=1e-3)

    def test_decreasing_with_budget(self, problem):
        """The value function is concave: the marginal value never increases."""
        budgets = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0]
        slopes = [marginal_value_of_energy(problem.with_budget(b)) for b in budgets]
        for earlier, later in zip(slopes, slopes[1:]):
            assert later <= earlier + 1e-9

    def test_invalid_step_rejected(self, problem):
        with pytest.raises(ValueError):
            marginal_value_of_energy(problem, step_j=0.0)


class TestValueCurve:
    def test_curve_is_nondecreasing_and_concave(self, problem):
        curve = value_curve(problem, num_points=60)
        assert np.all(np.diff(curve.objective_values) >= -1e-9)
        secants = np.diff(curve.objective_values) / np.diff(curve.budgets_j)
        assert np.all(np.diff(secants) <= 1e-6)

    def test_breakpoints_found_between_design_point_switches(self, problem):
        curve = value_curve(problem, num_points=120)
        # The Table 2 problem has several basis changes between the floor and
        # saturation (DP5-only -> DP4/DP5 blend -> ... -> DP1-only).
        assert len(curve.breakpoints_j) >= 2
        assert all(0.18 < b < 10.5 for b in curve.breakpoints_j)

    def test_saturation_budget_close_to_dp1_full_hour(self, problem):
        curve = value_curve(problem, num_points=150)
        assert curve.saturation_budget_j == pytest.approx(9.94, abs=0.3)

    def test_interpolation_helpers(self, problem):
        curve = value_curve(problem, num_points=60)
        assert curve.value_at(5.0) == pytest.approx(0.82, abs=0.01)
        assert curve.marginal_at(2.0) > curve.marginal_at(9.0)

    def test_explicit_budget_grid(self, problem):
        curve = value_curve(problem, budgets_j=[0.2, 2.0, 4.0, 6.0, 8.0, 10.0])
        assert curve.budgets_j.shape == (6,)
        with pytest.raises(ValueError):
            value_curve(problem, budgets_j=[1.0, 2.0])

    def test_num_points_validation(self, problem):
        with pytest.raises(ValueError):
            value_curve(problem, num_points=2)


class TestStarvationLevel:
    def test_off_below_floor(self, problem):
        assert energy_starvation_level(problem.with_budget(0.05)) == "off"

    def test_starved_below_cheapest_full_hour(self, problem):
        assert energy_starvation_level(problem.with_budget(2.0)) == "starved"

    def test_constrained_in_middle_region(self, problem):
        assert energy_starvation_level(problem.with_budget(6.0)) == "constrained"

    def test_saturated_beyond_dp1_budget(self, problem):
        assert energy_starvation_level(problem.with_budget(12.0)) == "saturated"
