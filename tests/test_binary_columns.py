"""Binary columnar wire-format tests (satellite of the kernels PR).

Covers the :meth:`CampaignColumns.to_bytes`/:meth:`from_bytes` codec
(byte-exact round-trips at both dtypes and codecs, rich ``ValueError``
diagnostics on malformed or truncated blobs), the length-prefixed
:meth:`FleetResult.to_binary_frames` stream, and the HTTP negotiation:
``GET /campaign/<id>/columns?format=binary`` must reproduce the local
fleet run to 1e-9, unknown ``format``/``dtype`` values must map to the
service's 400 JSON error contract, and the NDJSON default must be
untouched.
"""

from __future__ import annotations

import http.client
import json
import struct

import numpy as np
import pytest

from repro.data.table2 import table2_design_points
from repro.service.client import AllocationClient, ServiceError
from repro.service.client import main as client_main
from repro.service.requests import CampaignRequest
from repro.service.server import AllocationService, start_in_thread
from repro.simulation.fleet import (
    CAMPAIGN_BINARY_MAGIC,
    FleetCampaign,
    FleetResult,
)
from repro.simulation.metrics import BINARY_FLOAT_DTYPES, CampaignColumns


@pytest.fixture(scope="module")
def points():
    return table2_design_points()


@pytest.fixture(scope="module")
def local_result(points):
    """One small closed-loop campaign shared by the codec tests."""
    request = CampaignRequest(hours=48, alphas=(1.0, 2.0), baselines=("DP1",))
    scenarios, labels, policies, trace, config = request.build()
    return FleetCampaign(scenarios, config, scenario_labels=labels).run(
        policies, trace
    )


@pytest.fixture(scope="module")
def columns(local_result):
    return local_result.result(0).columns


# ---------------------------------------------------------------------------
# CampaignColumns.to_bytes / from_bytes
# ---------------------------------------------------------------------------

class TestColumnsCodec:
    @pytest.mark.parametrize("compress", [True, False])
    def test_f8_round_trip_is_exact(self, columns, compress):
        blob = columns.to_bytes(dtype="<f8", compress=compress)
        decoded = CampaignColumns.from_bytes(blob)
        np.testing.assert_array_equal(decoded.period_index, columns.period_index)
        np.testing.assert_array_equal(
            decoded.windows_total, columns.windows_total
        )
        np.testing.assert_array_equal(
            decoded.objective_value, columns.objective_value
        )
        np.testing.assert_array_equal(
            decoded.energy_budget_j, columns.energy_budget_j
        )
        np.testing.assert_array_equal(
            decoded.times_by_design_point_s, columns.times_by_design_point_s
        )
        assert decoded.design_point_names == columns.design_point_names

    @pytest.mark.parametrize("compress", [True, False])
    def test_f4_round_trip_is_close(self, columns, compress):
        decoded = CampaignColumns.from_bytes(
            columns.to_bytes(dtype="<f4", compress=compress)
        )
        # Int columns never quantise; floats carry float32 precision.
        np.testing.assert_array_equal(decoded.period_index, columns.period_index)
        np.testing.assert_allclose(
            decoded.objective_value, columns.objective_value,
            rtol=1e-6, atol=1e-6,
        )
        np.testing.assert_allclose(
            decoded.energy_budget_j, columns.energy_budget_j,
            rtol=1e-6, atol=1e-5,
        )
        assert decoded.energy_budget_j.dtype == np.float64  # floats widen back

    def test_encoding_is_deterministic_and_reencodable(self, columns):
        # Byte-exactness: the same columns always serialise to the same
        # bytes (zlib level 6 is deterministic), and a decode/encode cycle
        # reproduces the original blob bit for bit.
        for dtype in BINARY_FLOAT_DTYPES:
            first = columns.to_bytes(dtype=dtype)
            second = columns.to_bytes(dtype=dtype)
            assert first == second
            decoded = CampaignColumns.from_bytes(first)
            assert decoded.to_bytes(dtype=dtype) == first

    def test_compression_shrinks_the_payload(self, columns):
        raw = columns.to_bytes(dtype="<f8", compress=False)
        packed = columns.to_bytes(dtype="<f8", compress=True)
        assert len(packed) < len(raw)

    def test_unknown_dtype_is_rejected(self, columns):
        with pytest.raises(ValueError, match="dtype"):
            columns.to_bytes(dtype="<f2")

    def test_malformed_blobs_raise_value_errors(self, columns):
        good = columns.to_bytes(dtype="<f8", compress=False)
        with pytest.raises(ValueError, match="header length"):
            CampaignColumns.from_bytes(b"\x01\x02")
        with pytest.raises(ValueError, match="header"):
            CampaignColumns.from_bytes(struct.pack("<Q", 10**6) + b"\x00" * 16)
        header_len = struct.unpack_from("<Q", good, 0)[0]
        with pytest.raises(ValueError, match="header"):
            CampaignColumns.from_bytes(
                struct.pack("<Q", header_len)
                + b"{" * header_len
                + good[8 + header_len:]
            )
        with pytest.raises(ValueError, match="truncated"):
            CampaignColumns.from_bytes(good[:-16])
        with pytest.raises(ValueError, match="trailing"):
            CampaignColumns.from_bytes(good + b"\x00")

    def test_tampered_header_fields_are_rejected(self, columns):
        good = columns.to_bytes(dtype="<f8", compress=False)
        header_len = struct.unpack_from("<Q", good, 0)[0]
        header = json.loads(good[8:8 + header_len].decode("utf-8"))
        payload = good[8 + header_len:]

        def rebuild(**overrides):
            tampered = dict(header, **overrides)
            blob = json.dumps(tampered).encode("utf-8")
            return struct.pack("<Q", len(blob)) + blob + payload

        with pytest.raises(ValueError, match="version"):
            CampaignColumns.from_bytes(rebuild(version=9))
        with pytest.raises(ValueError, match="dtype"):
            CampaignColumns.from_bytes(rebuild(dtype="<f2"))
        with pytest.raises(ValueError, match="codec"):
            CampaignColumns.from_bytes(rebuild(codec="lz9"))
        with pytest.raises(ValueError, match="num_periods"):
            CampaignColumns.from_bytes(rebuild(num_periods=-1))


# ---------------------------------------------------------------------------
# The FleetResult binary stream
# ---------------------------------------------------------------------------

class TestFleetResultBinaryStream:
    def test_round_trip_is_exact(self, local_result):
        blob = b"".join(local_result.to_binary_frames())
        assert blob.startswith(CAMPAIGN_BINARY_MAGIC)
        decoded = FleetResult.from_binary(blob)
        assert decoded.policy_names == local_result.policy_names
        assert decoded.scenario_labels == local_result.scenario_labels
        assert decoded.trace_hours == local_result.trace_hours
        for scenario_index, policy_index, cell in decoded:
            reference = local_result.result(policy_index, scenario_index)
            np.testing.assert_array_equal(
                np.asarray(cell.columns.energy_budget_j),
                np.asarray(reference.columns.energy_budget_j),
            )
            np.testing.assert_array_equal(
                np.asarray(cell.columns.energy_consumed_j),
                np.asarray(reference.columns.energy_consumed_j),
            )
            np.testing.assert_array_equal(
                np.asarray(cell.battery_charge_j),
                np.asarray(reference.battery_charge_j),
            )

    def test_bad_magic_is_rejected(self, local_result):
        blob = b"".join(local_result.to_binary_frames())
        with pytest.raises(ValueError, match="magic"):
            FleetResult.from_binary(b"NOTACOL1" + blob[8:])

    def test_truncated_stream_is_rejected(self, local_result):
        blob = b"".join(local_result.to_binary_frames())
        for cut in (len(CAMPAIGN_BINARY_MAGIC) + 3, len(blob) // 2, len(blob) - 5):
            with pytest.raises(ValueError):
                FleetResult.from_binary(blob[:cut])

    def test_trailing_garbage_is_rejected(self, local_result):
        blob = b"".join(local_result.to_binary_frames())
        with pytest.raises(ValueError, match="trailing"):
            FleetResult.from_binary(blob + b"\x00" * 12)


# ---------------------------------------------------------------------------
# HTTP negotiation
# ---------------------------------------------------------------------------

class TestBinaryColumnsHttp:
    REQUEST = CampaignRequest(hours=48, alphas=(1.0, 2.0), baselines=("DP1",))

    @pytest.fixture(scope="class")
    def server(self, points):
        service = AllocationService(
            default_points=points, window_s=0.001, workers=2,
            campaign_workers=2,
        )
        handle = start_in_thread(service)
        yield handle
        handle.stop()
        service.close()

    @pytest.fixture(scope="class")
    def client(self, server):
        return AllocationClient(port=server.port, timeout_s=120.0)

    @pytest.fixture(scope="class")
    def finished(self, client):
        submitted = client.submit_campaign(self.REQUEST)
        client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
        return submitted

    def test_binary_columns_match_local_run(self, client, finished, local_result):
        remote = client.campaign_result(finished.campaign_id, binary=True)
        assert remote.policy_names == local_result.policy_names
        for scenario_index, policy_index, cell in remote:
            reference = local_result.result(policy_index, scenario_index)
            np.testing.assert_allclose(
                cell.objective_values(), reference.objective_values(),
                atol=1e-9,
            )
            np.testing.assert_allclose(
                cell.battery_charge_j, reference.battery_charge_j, atol=1e-9
            )

    def test_binary_equals_ndjson_to_the_last_bit(self, client, finished):
        # Both wire formats decode from the same float64 columns: the f8
        # binary path must agree with NDJSON exactly, not just to 1e-9.
        ndjson = client.campaign_result(finished.campaign_id)
        binary = client.campaign_result(finished.campaign_id, binary=True)
        for scenario_index, policy_index, cell in binary:
            reference = ndjson.result(policy_index, scenario_index)
            np.testing.assert_array_equal(
                np.asarray(cell.columns.energy_budget_j),
                np.asarray(reference.columns.energy_budget_j),
            )

    def test_f4_wire_is_close(self, client, finished):
        remote = client.campaign_result(
            finished.campaign_id, binary=True, dtype="f4"
        )
        reference = client.campaign_result(finished.campaign_id)
        for scenario_index, policy_index, cell in remote:
            local = reference.result(policy_index, scenario_index)
            np.testing.assert_allclose(
                cell.objective_values(), local.objective_values(),
                rtol=1e-6, atol=1e-6,
            )

    def test_binary_stream_is_chunked_octet_stream(self, server, finished):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30.0
        )
        try:
            connection.request(
                "GET",
                f"/campaign/{finished.campaign_id}/columns?format=binary",
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Transfer-Encoding") == "chunked"
            assert response.getheader("Content-Type") == "application/octet-stream"
            blob = response.read()
        finally:
            connection.close()
        assert blob.startswith(CAMPAIGN_BINARY_MAGIC)
        decoded = FleetResult.from_binary(blob)
        assert decoded.num_cells == self.REQUEST.num_cells

    def test_ndjson_stays_the_default(self, server, finished):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30.0
        )
        try:
            connection.request(
                "GET", f"/campaign/{finished.campaign_id}/columns"
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            response.read()
        finally:
            connection.close()

    @pytest.mark.parametrize(
        "query", ["format=msgpack", "format=binary&dtype=f2"]
    )
    def test_unknown_negotiation_is_400_json_error(self, server, finished, query):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30.0
        )
        try:
            connection.request(
                "GET",
                f"/campaign/{finished.campaign_id}/columns?{query}",
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Content-Type") == "application/json"
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert "error" in payload

    def test_truncated_binary_body_raises_client_side(self, client, finished):
        blob = client.campaign_columns_binary(finished.campaign_id)
        with pytest.raises(ValueError):
            FleetResult.from_binary(blob[: len(blob) - 20])

    def test_client_cli_binary_columns(self, server, finished, capsys):
        code = client_main(
            [
                "--port", str(server.port), "--timeout", "120",
                "campaign", "columns", finished.campaign_id, "--binary",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 + self.REQUEST.num_cells
        meta = json.loads(lines[0])
        assert meta["trace_hours"] == 48
