"""Tests for sharded fleet campaigns and per-scenario battery variants.

The sharded runner must be *exactly* equivalent to the in-process fleet
engine -- the workers run the same vectorized code on partitions of the
same grid -- so every comparison here is to 1e-9 or tighter, on per-period
series, not just aggregates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import run_fleet_campaign_experiment
from repro.cli import main as cli_main
from repro.data.table2 import table2_design_points
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.service.shard import run_sharded_campaign, shard_cells
from repro.simulation.fleet import CampaignConfig, FleetCampaign
from repro.simulation.metrics import CampaignColumns
from repro.simulation.policies import ReapPolicy, StaticPolicy
from repro.simulation.simulator import HarvestingCampaign


@pytest.fixture(scope="module")
def points():
    return tuple(table2_design_points())


@pytest.fixture(scope="module")
def trace():
    month = SyntheticSolarModel(seed=2015).generate_month(9)
    return SolarTrace(month.hours[:72], name=month.name)


def _policies(points):
    return [
        ReapPolicy(points, alpha=1.0),
        ReapPolicy(points, alpha=2.0),
        StaticPolicy(points, "DP1"),
        StaticPolicy(points, "DP5"),
    ]


class StatefulPolicy(ReapPolicy):
    """A policy with cross-period state (module-level so it pickles)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seen = 0

    def reset(self):  # cross-period state: time slicing would reset it
        self.seen = 0


def _assert_cells_match(sharded, single):
    assert sharded.scenario_labels == single.scenario_labels
    assert sharded.policy_names == single.policy_names
    for scenario_index, policy_index, cell in sharded:
        reference = single.result(policy_index, scenario_index)
        np.testing.assert_allclose(
            cell.objective_values(), reference.objective_values(), atol=1e-9
        )
        np.testing.assert_allclose(
            cell.active_times_s(), reference.active_times_s(), atol=1e-9
        )
        assert cell.total_energy_consumed_j == pytest.approx(
            reference.total_energy_consumed_j, abs=1e-9
        )
        assert cell.total_windows == reference.total_windows
        if reference.battery_charge_j is not None:
            np.testing.assert_allclose(
                cell.battery_charge_j, reference.battery_charge_j, atol=1e-9
            )


class TestShardCells:
    def test_partitions_every_cell_once(self):
        chunks = shard_cells(3, 4, 5)
        flat = [cell for chunk in chunks for cell in chunk]
        assert flat == [(s, p) for s in range(3) for p in range(4)]
        assert len(chunks) == 5
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_cells(self):
        assert len(shard_cells(1, 2, 8)) == 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_cells(0, 1, 1)
        with pytest.raises(ValueError):
            shard_cells(1, 1, 0)


class TestCampaignColumnsConcat:
    def test_concat_round_trips_a_split(self, points, trace):
        campaign = FleetCampaign(HarvestScenario())
        result = campaign.run(_policies(points)[:1], trace).result(0)
        columns = result.columns
        parts = [
            CampaignColumns(
                period_index=columns.period_index[lo:hi],
                energy_budget_j=columns.energy_budget_j[lo:hi],
                energy_consumed_j=columns.energy_consumed_j[lo:hi],
                active_time_s=columns.active_time_s[lo:hi],
                off_time_s=columns.off_time_s[lo:hi],
                windows_total=columns.windows_total[lo:hi],
                windows_observed=columns.windows_observed[lo:hi],
                windows_correct=columns.windows_correct[lo:hi],
                objective_value=columns.objective_value[lo:hi],
                expected_accuracy=columns.expected_accuracy[lo:hi],
                design_point_names=columns.design_point_names,
                times_by_design_point_s=columns.times_by_design_point_s[lo:hi],
            )
            for lo, hi in ((0, 30), (30, 31), (31, len(columns)))
        ]
        merged = CampaignColumns.concat(parts)
        np.testing.assert_array_equal(merged.period_index, columns.period_index)
        np.testing.assert_allclose(
            merged.objective_value, columns.objective_value, atol=0
        )
        np.testing.assert_allclose(
            merged.times_by_design_point_s,
            columns.times_by_design_point_s,
            atol=0,
        )

    def test_concat_drops_times_on_mixed_labelling(self):
        plain = CampaignColumns(
            period_index=np.arange(2),
            energy_budget_j=np.ones(2),
            energy_consumed_j=np.ones(2),
            active_time_s=np.ones(2),
            off_time_s=np.ones(2),
            windows_total=np.ones(2, dtype=int),
            windows_observed=np.ones(2, dtype=int),
            windows_correct=np.ones(2),
            objective_value=np.ones(2),
            expected_accuracy=np.ones(2),
        )
        labelled = CampaignColumns(
            period_index=np.arange(2),
            energy_budget_j=np.ones(2),
            energy_consumed_j=np.ones(2),
            active_time_s=np.ones(2),
            off_time_s=np.ones(2),
            windows_total=np.ones(2, dtype=int),
            windows_observed=np.ones(2, dtype=int),
            windows_correct=np.ones(2),
            objective_value=np.ones(2),
            expected_accuracy=np.ones(2),
            design_point_names=("DP1",),
            times_by_design_point_s=np.ones((2, 1)),
        )
        merged = CampaignColumns.concat([plain, labelled])
        assert merged.times_by_design_point_s is None
        assert len(merged) == 4

    def test_concat_rejects_empty(self):
        with pytest.raises(ValueError):
            CampaignColumns.concat([])


class TestShardedCampaign:
    def test_cell_sharded_closed_loop_matches_single_process(self, points, trace):
        scenarios = [
            HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
            for factor in (0.032, 0.05)
        ]
        policies = _policies(points)
        config = CampaignConfig(use_battery=True)
        single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
        sharded = run_sharded_campaign(scenarios, policies, trace, config, jobs=4)
        assert sharded.scan is None  # workers own private scans
        _assert_cells_match(sharded, single)

    def test_cell_sharded_sampled_mode_keeps_rng_parity(self, points, trace):
        from repro.simulation.device import DeviceConfig

        scenarios = [HarvestScenario()]
        policies = _policies(points)[:2]
        config = CampaignConfig(
            use_battery=True, device=DeviceConfig(recognition_mode="sampled")
        )
        single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
        sharded = run_sharded_campaign(scenarios, policies, trace, config, jobs=2)
        for scenario_index, policy_index, cell in sharded:
            reference = single.result(policy_index, scenario_index)
            assert cell.total_windows_correct == pytest.approx(
                reference.total_windows_correct, abs=0
            )

    def test_time_sharded_open_loop_matches_single_process(self, points, trace):
        scenarios = [HarvestScenario()]
        policies = [ReapPolicy(points, alpha=1.0)]
        config = CampaignConfig(use_battery=False)
        single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
        sharded = run_sharded_campaign(scenarios, policies, trace, config, jobs=3)
        merged = sharded.result(0).columns
        reference = single.result(0).columns
        np.testing.assert_array_equal(merged.period_index, reference.period_index)
        np.testing.assert_allclose(
            merged.objective_value, reference.objective_value, atol=1e-9
        )
        np.testing.assert_allclose(
            merged.times_by_design_point_s,
            reference.times_by_design_point_s,
            atol=1e-9,
        )

    def test_single_closed_loop_cell_cannot_time_shard(self, points, trace):
        # One closed-loop cell with many workers: the runner must fall back
        # to an exact (single-shard) run rather than split the recurrence.
        scenarios = [HarvestScenario()]
        policies = [ReapPolicy(points, alpha=1.0)]
        config = CampaignConfig(use_battery=True)
        single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
        sharded = run_sharded_campaign(scenarios, policies, trace, config, jobs=4)
        _assert_cells_match(sharded, single)

    def test_rejects_bad_jobs(self, points, trace):
        with pytest.raises(ValueError):
            run_sharded_campaign(
                [HarvestScenario()], _policies(points)[:1], trace, jobs=0
            )

    def test_stateful_policy_refuses_time_sharding(self, points, trace):
        from repro.service.shard import _time_shardable

        config = CampaignConfig(use_battery=False)
        assert _time_shardable(config, [ReapPolicy(points)])
        assert not _time_shardable(config, [StatefulPolicy(points)])
        # The stateful cell still runs exactly (cell-sharded, one chunk).
        single = run_sharded_campaign(
            [HarvestScenario()], [StatefulPolicy(points)], trace, config, jobs=1
        )
        sharded = run_sharded_campaign(
            [HarvestScenario()], [StatefulPolicy(points)], trace, config, jobs=3
        )
        _assert_cells_match(sharded, single)


class TestPerScenarioBattery:
    def test_battery_overrides_flow_into_the_scan(self, points, trace):
        policies = _policies(points)[:2]
        config = CampaignConfig(use_battery=True)
        small = HarvestScenario(battery_capacity_j=30.0, battery_initial_j=5.0)
        large = HarvestScenario(battery_capacity_j=200.0, battery_initial_j=150.0)
        fleet = FleetCampaign([small, large], config).run(policies, trace)
        # Each scenario must match a dedicated run configured the same way.
        for scenario_index, scenario in enumerate((small, large)):
            dedicated = FleetCampaign(
                [HarvestScenario()],
                CampaignConfig(
                    use_battery=True,
                    battery_capacity_j=scenario.battery_capacity_j,
                    battery_initial_j=scenario.battery_initial_j,
                ),
            ).run(policies, trace)
            for policy_index in range(len(policies)):
                cell = fleet.result(policy_index, scenario_index)
                reference = dedicated.result(policy_index, 0)
                np.testing.assert_allclose(
                    cell.battery_charge_j,
                    reference.battery_charge_j,
                    atol=1e-12,
                )
                np.testing.assert_allclose(
                    cell.objective_values(),
                    reference.objective_values(),
                    atol=1e-12,
                )

    def test_scalar_engine_honours_overrides(self, points, trace):
        scenario = HarvestScenario(battery_capacity_j=45.0, battery_initial_j=40.0)
        config = CampaignConfig(use_battery=True)
        policy = ReapPolicy(points, alpha=1.0)
        fleet = HarvestingCampaign(scenario, config, engine="fleet").run(
            policy, trace
        )
        scalar = HarvestingCampaign(scenario, config, engine="scalar").run(
            policy, trace
        )
        np.testing.assert_allclose(
            fleet.battery_charge_j, scalar.battery_charge_j, atol=1e-9
        )
        np.testing.assert_allclose(
            fleet.objective_values(), scalar.objective_values(), atol=1e-9
        )

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            HarvestScenario(battery_capacity_j=0.0)


class TestShardedExperimentAndCli:
    def test_experiment_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_fleet_campaign_experiment(jobs=0, hours=24)

    def test_experiment_rows_match_across_jobs(self):
        kwargs = dict(
            alphas=(1.0,),
            baselines=("DP1", "DP5"),
            exposure_factors=(0.032, 0.05),
            hours=48,
        )
        single = run_fleet_campaign_experiment(jobs=1, **kwargs)
        sharded = run_fleet_campaign_experiment(jobs=2, **kwargs)
        assert sharded.extras["jobs"] == 2
        assert len(single.rows) == len(sharded.rows)
        for row_a, row_b in zip(single.rows, sharded.rows):
            assert row_a[:2] == row_b[:2]
            np.testing.assert_allclose(
                [float(v) for v in row_a[2:]],
                [float(v) for v in row_b[2:]],
                atol=1e-9,
            )

    def test_fleet_cli_jobs_flag(self, tmp_path, capsys):
        csv_path = tmp_path / "fleet.csv"
        code = cli_main(
            [
                "fleet", "--hours", "24", "--alphas", "1.0",
                "--baselines", "DP1", "--jobs", "2", "--csv", str(csv_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sharded fleet engine (2 jobs)" in output
        assert csv_path.exists()

    def test_list_documents_serve_command(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "serve" in output
        assert "allocation service" in output
