"""Tests for the published constants (Table 2 and paper scalars)."""

from __future__ import annotations

import pytest

from repro.core.pareto import pareto_front
from repro.data.paper_constants import (
    ACTIVITY_PERIOD_S,
    ACTIVITY_WINDOW_S,
    DP1_FULL_HOUR_ENERGY_J,
    MIN_OFF_ENERGY_J,
    OFF_STATE_POWER_W,
    PaperClaims,
)
from repro.data.table2 import (
    TABLE2_DESIGN_POINTS,
    TABLE2_ROWS,
    table2_by_name,
    table2_design_points,
    table2_rows,
)


class TestPaperConstants:
    def test_off_power_consistent_with_floor(self):
        assert OFF_STATE_POWER_W * ACTIVITY_PERIOD_S == pytest.approx(MIN_OFF_ENERGY_J)

    def test_activity_period_is_one_hour(self):
        assert ACTIVITY_PERIOD_S == 3600.0

    def test_dp1_full_hour_energy_close_to_power_times_period(self):
        dp1 = table2_by_name()["DP1"]
        implied = dp1.power_mw * 1e-3 * ACTIVITY_PERIOD_S
        assert implied == pytest.approx(DP1_FULL_HOUR_ENERGY_J, rel=0.01)

    def test_paper_claims_defaults(self):
        claims = PaperClaims()
        assert claims.accuracy_gain_vs_dp1 == pytest.approx(0.46)
        assert claims.active_time_gain_vs_dp1 == pytest.approx(0.66)
        assert claims.dp4_share_at_5j + claims.dp5_share_at_5j == pytest.approx(1.0)


class TestTable2:
    def test_five_rows(self):
        assert len(TABLE2_ROWS) == 5
        assert len(table2_rows()) == 5
        assert len(TABLE2_DESIGN_POINTS) == 5

    def test_rows_are_numbered_in_order(self):
        assert [row.dp_number for row in TABLE2_ROWS] == [1, 2, 3, 4, 5]

    def test_exec_time_breakdown_sums_to_total(self):
        for row in TABLE2_ROWS:
            components = (
                row.accel_features_ms + row.stretch_features_ms + row.classifier_ms
            )
            assert components == pytest.approx(row.total_exec_ms, abs=0.01)

    def test_energy_is_mcu_plus_sensor(self):
        for row in TABLE2_ROWS:
            assert row.mcu_energy_mj + row.sensor_energy_mj == pytest.approx(
                row.energy_mj, abs=0.01
            )

    def test_power_consistent_with_energy_per_window(self):
        for row in TABLE2_ROWS:
            implied_power = row.energy_mj / ACTIVITY_WINDOW_S
            assert implied_power == pytest.approx(row.power_mw, rel=0.03)

    def test_design_points_are_fresh_objects(self):
        first = table2_design_points()
        second = table2_design_points()
        assert first is not second
        assert first[0] is not second[0]

    def test_design_point_conversion_values(self):
        dp1 = table2_by_name()["DP1"].to_design_point()
        assert dp1.name == "DP1"
        assert dp1.accuracy == pytest.approx(0.94)
        assert dp1.power_w == pytest.approx(2.76e-3)
        assert dp1.energy_per_activity_mj == pytest.approx(4.48)
        assert dp1.execution is not None
        assert dp1.execution.total_ms == pytest.approx(5.71, abs=0.01)

    def test_accuracy_and_power_are_monotone_across_dps(self):
        points = table2_design_points()
        accuracies = [dp.accuracy for dp in points]
        powers = [dp.power_w for dp in points]
        assert accuracies == sorted(accuracies, reverse=True)
        assert powers == sorted(powers, reverse=True)

    def test_all_published_points_are_pareto_optimal(self):
        front = pareto_front(table2_design_points())
        assert len(front) == 5

    def test_by_name_lookup(self):
        by_name = table2_by_name()
        assert set(by_name) == {"DP1", "DP2", "DP3", "DP4", "DP5"}
        assert by_name["DP5"].accuracy_percent == pytest.approx(76.0)
