"""Tests for the from-scratch simplex solver (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lp import LinearProgram, LPStatus
from repro.core.simplex import (
    PivotRule,
    SimplexSolver,
    simplex_max_leq,
    solve_lp,
)


class TestSimplexMaxLeq:
    """The literal Algorithm 1 path: max c'x s.t. Ax <= b, x >= 0, b >= 0."""

    def test_textbook_two_variable_problem(self):
        # max 3x + 2y s.t. x + y <= 4, x + 3y <= 6
        solution = simplex_max_leq(
            a_ub=[[1.0, 1.0], [1.0, 3.0]],
            b_ub=[4.0, 6.0],
            objective=[3.0, 2.0],
        )
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(12.0)
        assert solution.x == pytest.approx([4.0, 0.0])

    def test_problem_with_interior_blend_optimum(self):
        # max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> optimum at (3, 1.5)
        solution = simplex_max_leq(
            a_ub=[[6.0, 4.0], [1.0, 2.0]],
            b_ub=[24.0, 6.0],
            objective=[5.0, 4.0],
        )
        assert solution.objective_value == pytest.approx(21.0)
        assert solution.x == pytest.approx([3.0, 1.5])

    def test_zero_budget_gives_origin(self):
        solution = simplex_max_leq(
            a_ub=[[1.0, 1.0]], b_ub=[0.0], objective=[1.0, 2.0]
        )
        assert solution.objective_value == pytest.approx(0.0)
        assert np.allclose(solution.x, 0.0)

    def test_unbounded_detected(self):
        # Constraint does not bound the second variable.
        solution = simplex_max_leq(
            a_ub=[[1.0, 0.0]], b_ub=[5.0], objective=[1.0, 1.0]
        )
        assert solution.status is LPStatus.UNBOUNDED

    def test_negative_rhs_rejected(self):
        with pytest.raises(ValueError, match="b >= 0"):
            simplex_max_leq(a_ub=[[1.0]], b_ub=[-1.0], objective=[1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simplex_max_leq(a_ub=[[1.0, 1.0]], b_ub=[1.0, 2.0], objective=[1.0, 1.0])
        with pytest.raises(ValueError):
            simplex_max_leq(a_ub=[[1.0, 1.0]], b_ub=[1.0], objective=[1.0])

    def test_bland_rule_matches_dantzig_objective(self):
        a = [[2.0, 1.0, 1.0], [1.0, 3.0, 2.0], [2.0, 1.0, 2.0]]
        b = [14.0, 20.0, 18.0]
        c = [2.0, 4.0, 3.0]
        dantzig = simplex_max_leq(a, b, c, pivot_rule=PivotRule.DANTZIG)
        bland = simplex_max_leq(a, b, c, pivot_rule=PivotRule.BLAND)
        assert dantzig.objective_value == pytest.approx(bland.objective_value)

    def test_degenerate_problem_terminates(self):
        # Classic degeneracy: redundant constraints through the same vertex.
        solution = simplex_max_leq(
            a_ub=[[1.0, 1.0], [1.0, 1.0], [1.0, 0.0]],
            b_ub=[1.0, 1.0, 1.0],
            objective=[1.0, 1.0],
        )
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(1.0)

    def test_solution_feasibility(self):
        a = [[1.0, 2.0, 1.0], [3.0, 0.0, 2.0]]
        b = [10.0, 15.0]
        c = [2.0, 3.0, 4.0]
        solution = simplex_max_leq(a, b, c)
        slack = np.asarray(b) - np.asarray(a) @ solution.x
        assert np.all(slack >= -1e-9)
        assert np.all(solution.x >= -1e-9)


class TestSimplexSolverGeneral:
    """The two-phase solver handling equalities and negative RHS."""

    def test_equality_constraint(self):
        # max x + 2y s.t. x + y = 3, y <= 2 -> (1, 2) with value 5
        lp = LinearProgram(
            objective=[1.0, 2.0],
            a_ub=[[0.0, 1.0]],
            b_ub=[2.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[3.0],
        )
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(5.0)
        assert solution.x == pytest.approx([1.0, 2.0])

    def test_infeasible_equalities(self):
        lp = LinearProgram(
            objective=[1.0],
            a_eq=[[1.0], [1.0]],
            b_eq=[1.0, 2.0],
        )
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.INFEASIBLE

    def test_infeasible_inequalities(self):
        # x <= -1 with x >= 0 is infeasible (handled through the >= flip).
        lp = LinearProgram(objective=[1.0], a_ub=[[1.0]], b_ub=[-1.0])
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.INFEASIBLE

    def test_negative_rhs_flipped_to_geq(self):
        # -x <= -2  <=>  x >= 2; maximise -x so optimum at x = 2.
        lp = LinearProgram(objective=[-1.0], a_ub=[[-1.0]], b_ub=[-2.0])
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.x[0] == pytest.approx(2.0)

    def test_unbounded_general(self):
        lp = LinearProgram(objective=[1.0, 0.0], a_ub=[[0.0, 1.0]], b_ub=[1.0])
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.UNBOUNDED

    def test_no_constraints_zero_objective(self):
        lp = LinearProgram(objective=[0.0, 0.0])
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(0.0)

    def test_no_constraints_positive_objective_unbounded(self):
        lp = LinearProgram(objective=[1.0])
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.UNBOUNDED

    def test_redundant_equality_rows_handled(self):
        lp = LinearProgram(
            objective=[1.0, 1.0],
            a_eq=[[1.0, 1.0], [2.0, 2.0]],
            b_eq=[2.0, 4.0],
        )
        solution = SimplexSolver().solve(lp)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(2.0)

    def test_iteration_limit_status(self):
        lp = LinearProgram(
            objective=[3.0, 2.0],
            a_ub=[[1.0, 1.0], [1.0, 3.0]],
            b_ub=[4.0, 6.0],
        )
        solver = SimplexSolver(max_iterations=0)
        solution = solver.solve(lp)
        assert solution.status is LPStatus.ITERATION_LIMIT

    def test_stats_recorded(self):
        lp = LinearProgram(
            objective=[1.0, 2.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[3.0],
        )
        solver = SimplexSolver()
        solver.solve(lp)
        assert solver.last_stats is not None
        assert solver.last_stats.total_iterations >= 1

    def test_solve_lp_wrapper(self):
        lp = LinearProgram(objective=[2.0], a_ub=[[1.0]], b_ub=[3.0])
        solution = solve_lp(lp)
        assert solution.objective_value == pytest.approx(6.0)


class TestAgainstDenseEnumeration:
    """Cross-check the solver against brute-force vertex enumeration."""

    @staticmethod
    def _brute_force_max(a, b, c):
        """Enumerate all vertices of {x >= 0, Ax <= b} for small problems."""
        from itertools import combinations

        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        c = np.asarray(c, dtype=float)
        n = c.size
        rows = [(a[i], b[i]) for i in range(a.shape[0])]
        rows += [(-np.eye(n)[i], 0.0) for i in range(n)]  # x_i >= 0 as -x_i <= 0
        best = 0.0  # origin is always feasible here
        for combo in combinations(range(len(rows)), n):
            mat = np.array([rows[i][0] for i in combo])
            rhs = np.array([rows[i][1] for i in combo])
            try:
                vertex = np.linalg.solve(mat, rhs)
            except np.linalg.LinAlgError:
                continue
            if np.any(vertex < -1e-9):
                continue
            if np.any(a @ vertex > b + 1e-9):
                continue
            best = max(best, float(c @ vertex))
        return best

    @pytest.mark.parametrize("seed", range(8))
    def test_random_small_problems(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 3, 4
        a = rng.uniform(0.1, 2.0, size=(m, n))
        b = rng.uniform(1.0, 10.0, size=m)
        c = rng.uniform(0.1, 3.0, size=n)
        solution = simplex_max_leq(a, b, c)
        assert solution.status is LPStatus.OPTIMAL
        expected = self._brute_force_max(a, b, c)
        assert solution.objective_value == pytest.approx(expected, rel=1e-7, abs=1e-9)
