"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["run", "figure4"])
        assert args.experiment == "figure4"
        assert args.windows == 1200
        assert args.points == 40


class TestRunCommands:
    def test_run_figure4(self, capsys):
        assert main(["run", "figure4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "accelerometer sensor" in output

    def test_run_offloading_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "offloading.csv"
        assert main(["run", "offloading", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert "strategy" in csv_path.read_text()
        assert "rows written" in capsys.readouterr().out

    def test_run_figure5a_with_few_points(self, capsys):
        assert main(["run", "figure5a", "--points", "8"]) == 0
        output = capsys.readouterr().out
        assert "REAP_%" in output

    def test_run_ablation_alpha(self, capsys):
        assert main(["run", "ablation-alpha"]) == 0
        assert "alpha" in capsys.readouterr().out


class TestAllocateAndSweep:
    def test_allocate_command(self, capsys):
        assert main(["allocate", "--budget", "5", "--alpha", "1"]) == 0
        output = capsys.readouterr().out
        assert "DP4" in output and "DP5" in output
        assert "expected accuracy" in output

    def test_allocate_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["allocate"])

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--alpha", "2", "--points", "6"]) == 0
        output = capsys.readouterr().out
        assert "REAP" in output
        assert "budget_J" in output

    def test_sweep_scalar_engine(self, capsys):
        assert main(["sweep", "--points", "5", "--engine", "scalar"]) == 0
        assert "scalar engine" in capsys.readouterr().out

    def test_sweep_alpha_grid(self, capsys):
        assert main(["sweep", "--points", "6", "--alphas", "0.5", "1", "2"]) == 0
        output = capsys.readouterr().out
        assert "alpha_0.5" in output
        assert "alpha_2" in output

    def test_sweep_alpha_grid_rejects_scalar_engine(self, capsys):
        assert main(["sweep", "--alphas", "1", "2", "--engine", "scalar"]) == 2
        assert "batch engine" in capsys.readouterr().err

    def test_run_grid_experiment(self, capsys):
        assert main(["run", "grid", "--points", "12"]) == 0
        output = capsys.readouterr().out
        assert "Budget x alpha grid" in output
        assert "J_alpha_1" in output


class TestFleetCommand:
    def test_fleet_closed_loop_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fleet.csv"
        assert main([
            "fleet", "--hours", "48", "--alphas", "1.0", "2.0",
            "--exposures", "0.032", "0.05", "--csv", str(csv_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "Fleet campaign" in output
        assert "16 campaign cells" in output
        assert "exposure=0.05" in output
        assert csv_path.exists()
        assert "final_battery_J" in csv_path.read_text()

    def test_fleet_open_loop(self, capsys):
        assert main([
            "fleet", "--hours", "24", "--alphas", "1.0",
            "--baselines", "DP1", "--open-loop",
        ]) == 0
        assert "open loop" in capsys.readouterr().out

    def test_fleet_rejects_bad_hours(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            main(["fleet", "--hours", "0"])


class TestServeAndRemoteFleet:
    def test_serve_parser_worker_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 1
        assert args.campaign_workers is None
        args = build_parser().parse_args(
            ["serve", "--workers", "4", "--campaign-workers", "2"]
        )
        assert (args.workers, args.campaign_workers) == (4, 2)

    def test_fleet_remote_rejects_jobs(self, capsys):
        assert main([
            "fleet", "--remote", "127.0.0.1:1", "--jobs", "2",
        ]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_fleet_remote_rejects_bad_address(self, capsys):
        assert main(["fleet", "--remote", "nocolonhere"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_fleet_remote_reports_connection_failure(self, capsys):
        assert main(["fleet", "--remote", "127.0.0.1:1", "--hours", "24"]) == 1
        assert "failed" in capsys.readouterr().err

    def test_fleet_remote_round_trip(self, tmp_path, capsys):
        from repro.service.server import AllocationService, start_in_thread

        service = AllocationService(window_s=0.001, campaign_workers=1)
        csv_path = tmp_path / "remote.csv"
        with start_in_thread(service) as server:
            code = main([
                "fleet", "--remote", f"127.0.0.1:{server.port}",
                "--hours", "24", "--alphas", "1.0", "--baselines", "DP1",
                "--csv", str(csv_path),
            ])
        service.close()
        assert code == 0
        output = capsys.readouterr().out
        assert "simulated remotely" in output
        assert "REAP" in output
        assert csv_path.read_text().count("\n") == 3  # header + 2 cells


class TestPlanCommand:
    def test_plan_command_prints_the_study(self, tmp_path, capsys):
        csv_path = tmp_path / "plan.csv"
        assert main([
            "plan", "--hours", "48", "--horizon", "8",
            "--forecasts", "perfect", "persistence",
            "--csv", str(csv_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "Planning study" in output
        assert "Horizon8-perfect" in output
        assert "Horizon8-persistence" in output
        assert "harvest-following REAP baseline" in output
        assert csv_path.exists()

    def test_plan_command_mpc(self, capsys):
        assert main([
            "plan", "--planner", "mpc", "--hours", "24", "--horizon", "6",
            "--forecasts", "perfect",
        ]) == 0
        assert "MPC6-perfect" in capsys.readouterr().out

    def test_plan_parser_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.planner == "horizon"
        assert args.horizon == 24
        assert args.forecasts == ["perfect", "persistence", "noisy"]

    def test_list_mentions_plan(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "plan" in output
        assert "forecast-driven" in output


class TestFleetPlanningFlags:
    def test_fleet_with_planners(self, capsys):
        assert main([
            "fleet", "--hours", "24", "--alphas", "1.0",
            "--baselines", "DP1", "--planners", "horizon", "mpc",
            "--horizon", "6", "--forecast", "noisy",
        ]) == 0
        output = capsys.readouterr().out
        assert "Horizon6-noisy" in output
        assert "MPC6-noisy" in output
        assert "4 campaign cells" in output

    def test_fleet_remote_with_planners(self, capsys):
        from repro.service.server import AllocationService, start_in_thread

        service = AllocationService(window_s=0.001, campaign_workers=1)
        with start_in_thread(service) as server:
            code = main([
                "fleet", "--remote", f"127.0.0.1:{server.port}",
                "--hours", "24", "--alphas", "1.0", "--baselines", "DP1",
                "--planners", "horizon", "--horizon", "6",
            ])
        service.close()
        assert code == 0
        output = capsys.readouterr().out
        assert "Horizon6-perfect" in output
        assert "simulated remotely" in output

    def test_fleet_rejects_planners_with_open_loop(self, capsys):
        assert main([
            "fleet", "--hours", "24", "--open-loop", "--planners", "horizon",
        ]) == 2
        assert "closed-loop" in capsys.readouterr().err
