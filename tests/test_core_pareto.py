"""Tests for the Pareto-front utilities."""

from __future__ import annotations

import pytest

from repro.core.design_point import DesignPoint
from repro.core.pareto import (
    dominated_points,
    hypervolume_2d,
    is_dominated,
    pareto_front,
    pareto_staircase,
    select_pareto_subset,
)


def _dp(name, accuracy, power_mw):
    return DesignPoint(name=name, accuracy=accuracy, power_w=power_mw * 1e-3)


@pytest.fixture
def mixed_points():
    """Three Pareto points and two dominated ones."""
    return [
        _dp("A", 0.95, 3.0),
        _dp("B", 0.90, 2.0),
        _dp("C", 0.70, 1.0),
        _dp("D", 0.85, 2.5),   # dominated by B
        _dp("E", 0.60, 1.5),   # dominated by C
    ]


class TestParetoFront:
    def test_front_excludes_dominated(self, mixed_points):
        front = pareto_front(mixed_points)
        names = {dp.name for dp in front}
        assert names == {"A", "B", "C"}

    def test_front_sorted_by_decreasing_power(self, mixed_points):
        front = pareto_front(mixed_points)
        powers = [dp.power_w for dp in front]
        assert powers == sorted(powers, reverse=True)

    def test_single_point_is_its_own_front(self):
        only = _dp("solo", 0.8, 1.0)
        assert pareto_front([only]) == [only]

    def test_duplicate_operating_points_deduplicated(self):
        a = _dp("A", 0.9, 2.0)
        b = _dp("B", 0.9, 2.0)
        front = pareto_front([a, b])
        assert len(front) == 1

    def test_table2_points_are_all_pareto_optimal(self, table2_points):
        front = pareto_front(table2_points)
        assert {dp.name for dp in front} == {"DP1", "DP2", "DP3", "DP4", "DP5"}

    def test_dominated_points_partition(self, mixed_points):
        dominated = dominated_points(mixed_points)
        assert {dp.name for dp in dominated} == {"D", "E"}
        front = pareto_front(mixed_points)
        assert len(front) + len(dominated) == len(mixed_points)


class TestIsDominated:
    def test_point_not_dominated_by_itself(self, mixed_points):
        a = mixed_points[0]
        assert not is_dominated(a, [a])

    def test_dominated_detection(self, mixed_points):
        by_name = {dp.name: dp for dp in mixed_points}
        assert is_dominated(by_name["D"], mixed_points)
        assert not is_dominated(by_name["A"], mixed_points)


class TestStaircase:
    def test_staircase_sorted_by_energy(self, table2_points):
        pairs = pareto_staircase(table2_points)
        energies = [e for e, _ in pairs]
        assert energies == sorted(energies)
        assert len(pairs) == 5

    def test_staircase_accuracy_monotone_with_energy(self, table2_points):
        pairs = pareto_staircase(table2_points)
        accuracies = [a for _, a in pairs]
        assert accuracies == sorted(accuracies)


class TestHypervolume:
    def test_positive_for_non_trivial_front(self, mixed_points):
        volume = hypervolume_2d(mixed_points, reference_power_w=4e-3)
        assert volume > 0

    def test_more_points_never_decrease_hypervolume(self):
        base = [_dp("A", 0.9, 3.0), _dp("B", 0.6, 1.0)]
        extended = base + [_dp("C", 0.8, 2.0)]
        reference = 4e-3
        assert hypervolume_2d(extended, reference) >= hypervolume_2d(base, reference)

    def test_requires_positive_reference(self, mixed_points):
        with pytest.raises(ValueError):
            hypervolume_2d(mixed_points, reference_power_w=0.0)


class TestSelectSubset:
    def test_returns_whole_front_when_small(self, table2_points):
        subset = select_pareto_subset(table2_points, 10)
        assert len(subset) == 5

    def test_respects_max_points(self, table2_points):
        subset = select_pareto_subset(table2_points, 3)
        assert len(subset) == 3

    def test_keeps_extreme_points(self, table2_points):
        subset = select_pareto_subset(table2_points, 2)
        names = {dp.name for dp in subset}
        assert names == {"DP1", "DP5"}

    def test_rejects_zero_max_points(self, table2_points):
        with pytest.raises(ValueError):
            select_pareto_subset(table2_points, 0)

    def test_subset_members_come_from_front(self, mixed_points):
        subset = select_pareto_subset(mixed_points, 2)
        front_names = {dp.name for dp in pareto_front(mixed_points)}
        assert all(dp.name in front_names for dp in subset)
