"""Tests for the cross-user evaluation protocols."""

from __future__ import annotations

import pytest

from repro.har.config import FeatureConfig, HARConfig
from repro.har.evaluation import CrossUserEvaluator, generalization_gap


@pytest.fixture(scope="module")
def evaluator(request):
    small_dataset = request.getfixturevalue("small_dataset")
    fast_training = request.getfixturevalue("fast_training_config")
    return CrossUserEvaluator(small_dataset, training_config=fast_training)


@pytest.fixture(scope="module")
def dp2_config():
    return HARConfig(
        features=FeatureConfig(accel_axes=("y",)),
        hidden_layers=(8,),
    )


class TestLeaveOneUserOut:
    def test_one_fold_per_held_out_user(self, evaluator, dp2_config):
        result = evaluator.leave_one_user_out(dp2_config, max_users=3)
        assert result.protocol == "leave-one-user-out"
        assert len(result.folds) == 3
        fold_ids = {fold.fold_id for fold in result.folds}
        assert fold_ids == {"user00", "user01", "user02"}

    def test_folds_partition_windows(self, evaluator, dp2_config, small_dataset):
        result = evaluator.leave_one_user_out(dp2_config, max_users=2)
        for fold in result.folds:
            assert fold.num_train_windows + fold.num_test_windows == len(small_dataset)
            assert fold.num_test_windows > 0

    def test_accuracies_above_chance(self, evaluator, dp2_config):
        result = evaluator.leave_one_user_out(dp2_config, max_users=3)
        # Seven roughly balanced classes: chance is ~14%.
        assert result.mean_accuracy > 0.4
        assert 0.0 <= result.std_accuracy <= 0.5
        assert result.worst_fold is not None
        assert result.worst_fold.test_accuracy <= result.mean_accuracy + 1e-9

    def test_requires_at_least_two_users(self, fast_training_config, small_dataset):
        single_user = small_dataset.subset(
            [i for i, uid in enumerate(small_dataset.user_ids) if uid == 0]
        )
        evaluator = CrossUserEvaluator(single_user, training_config=fast_training_config)
        config = HARConfig(features=FeatureConfig(accel_axes=("y",)), hidden_layers=(8,))
        with pytest.raises(ValueError):
            evaluator.leave_one_user_out(config)


class TestRandomSplitProtocol:
    def test_repeat_count(self, evaluator, dp2_config):
        result = evaluator.random_split(dp2_config, num_repeats=2)
        assert result.protocol == "random-split"
        assert len(result.folds) == 2

    def test_invalid_repeats(self, evaluator, dp2_config):
        with pytest.raises(ValueError):
            evaluator.random_split(dp2_config, num_repeats=0)

    def test_generalization_gap_is_finite(self, evaluator, dp2_config):
        within = evaluator.random_split(dp2_config, num_repeats=1)
        cross = evaluator.leave_one_user_out(dp2_config, max_users=2)
        gap = generalization_gap(within, cross)
        assert -1.0 <= gap <= 1.0

    def test_empty_result_metrics(self, dp2_config):
        from repro.har.evaluation import CrossUserResult

        empty = CrossUserResult(config=dp2_config, protocol="random-split")
        assert empty.mean_accuracy == 0.0
        assert empty.std_accuracy == 0.0
        assert empty.worst_fold is None
