"""Tests for the MCU, sensor, BLE and per-design-point energy models."""

from __future__ import annotations

import pytest

from repro.data.table2 import table2_by_name
from repro.energy.ble import BLEModel, offloading_comparison
from repro.energy.mcu import MCUModel
from repro.energy.power_model import (
    DesignPointEnergyModel,
    classifier_macs,
)
from repro.energy.sensor_energy import (
    AccelerometerEnergyModel,
    SensorSuiteEnergyModel,
    StretchSensorEnergyModel,
)
from repro.har.config import FeatureConfig, HARConfig
from repro.har.design_space import table2_specs
from repro.har.features.pipeline import FeatureExtractor


DP_CONFIGS = dict(table2_specs())


def _num_features(config: HARConfig) -> int:
    return FeatureExtractor(config.features).num_features


class TestMCUModel:
    def test_dp1_exec_time_matches_table2(self):
        mcu = MCUModel()
        config = DP_CONFIGS["DP1"]
        macs = classifier_macs(_num_features(config), config.hidden_layers)
        total = mcu.total_exec_time_ms(config.features, macs)
        assert total == pytest.approx(5.71, abs=0.15)
        assert mcu.accel_feature_time_ms(config.features) == pytest.approx(0.83, abs=0.05)
        assert mcu.stretch_feature_time_ms(config.features) == pytest.approx(3.83)

    def test_dp5_exec_time_matches_table2(self):
        mcu = MCUModel()
        config = DP_CONFIGS["DP5"]
        macs = classifier_macs(_num_features(config), config.hidden_layers)
        assert mcu.total_exec_time_ms(config.features, macs) == pytest.approx(4.71, abs=0.15)
        assert mcu.accel_feature_time_ms(config.features) == 0.0

    def test_sensing_fraction_scales_accel_feature_time(self):
        mcu = MCUModel()
        full = mcu.accel_feature_time_ms(FeatureConfig(accel_axes=("x", "y")))
        half = mcu.accel_feature_time_ms(
            FeatureConfig(accel_axes=("x", "y"), sensing_fraction=0.5)
        )
        assert half == pytest.approx(full / 2)

    def test_dwt_costs_more_than_statistical(self):
        mcu = MCUModel()
        statistical = mcu.accel_feature_time_ms(FeatureConfig(accel_features="statistical"))
        dwt = mcu.accel_feature_time_ms(FeatureConfig(accel_features="dwt"))
        assert dwt > statistical

    def test_classifier_time_grows_with_macs(self):
        mcu = MCUModel()
        assert mcu.classifier_time_ms(500) > mcu.classifier_time_ms(100)
        with pytest.raises(ValueError):
            mcu.classifier_time_ms(-1)

    def test_acquisition_energy_scales_with_channels(self):
        mcu = MCUModel()
        one = mcu.acquisition_energy_mj(FeatureConfig(accel_axes=("y",)))
        three = mcu.acquisition_energy_mj(FeatureConfig(accel_axes=("x", "y", "z")))
        assert three > one

    def test_negative_exec_time_rejected(self):
        with pytest.raises(ValueError):
            MCUModel().compute_energy_mj(-1.0)


class TestSensorEnergyModels:
    def test_accelerometer_power_zero_when_off(self):
        assert AccelerometerEnergyModel().power_mw(0) == 0.0

    def test_accelerometer_energy_scales_with_sensing_fraction(self):
        model = AccelerometerEnergyModel()
        full = model.energy_mj(2, 1.0)
        half = model.energy_mj(2, 0.5)
        assert half == pytest.approx(full / 2)

    def test_accelerometer_validation(self):
        model = AccelerometerEnergyModel()
        with pytest.raises(ValueError):
            model.power_mw(-1)
        with pytest.raises(ValueError):
            model.energy_mj(1, 1.5)

    def test_stretch_energy_matches_table2(self):
        assert StretchSensorEnergyModel().energy_mj() == pytest.approx(0.08, abs=0.01)

    def test_suite_energy_close_to_table2_sensor_column(self):
        suite = SensorSuiteEnergyModel()
        paper = table2_by_name()
        for name, config in DP_CONFIGS.items():
            modelled = suite.sensor_energy_mj(config.features)
            assert modelled == pytest.approx(paper[name].sensor_energy_mj, abs=0.35)

    def test_suite_components_sum(self):
        suite = SensorSuiteEnergyModel()
        config = DP_CONFIGS["DP1"].features
        total = suite.sensor_energy_mj(config)
        assert total == pytest.approx(
            suite.accel_energy_mj(config) + suite.stretch_energy_mj(config)
        )

    def test_stretch_only_config_has_no_accel_energy(self):
        suite = SensorSuiteEnergyModel()
        config = DP_CONFIGS["DP5"].features
        assert suite.accel_energy_mj(config) == 0.0


class TestBLEModel:
    def test_label_energy_matches_paper(self):
        assert BLEModel().label_energy_mj() == pytest.approx(0.38, abs=0.02)

    def test_raw_offload_energy_matches_paper(self):
        config = DP_CONFIGS["DP1"].features
        assert BLEModel().raw_offload_energy_mj(config) == pytest.approx(5.5, abs=0.3)

    def test_offload_bytes_shrink_with_fewer_axes(self):
        ble = BLEModel()
        dp1 = ble.raw_offload_bytes(DP_CONFIGS["DP1"].features)
        dp2 = ble.raw_offload_bytes(DP_CONFIGS["DP2"].features)
        dp5 = ble.raw_offload_bytes(DP_CONFIGS["DP5"].features)
        assert dp1 > dp2 > dp5

    def test_offloading_comparison_penalty(self):
        comparison = offloading_comparison()
        assert comparison["offload_penalty_factor"] > 10

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            BLEModel().transmit_energy_mj(-1)


class TestClassifierMacs:
    def test_single_hidden_layer(self):
        assert classifier_macs(33, (12,), 7) == 33 * 12 + 12 * 7

    def test_no_hidden_layer(self):
        assert classifier_macs(9, (), 7) == 63

    def test_two_hidden_layers(self):
        assert classifier_macs(10, (8, 4), 7) == 10 * 8 + 8 * 4 + 4 * 7

    def test_validation(self):
        with pytest.raises(ValueError):
            classifier_macs(0, (8,))
        with pytest.raises(ValueError):
            classifier_macs(10, (8,), num_classes=1)


class TestDesignPointEnergyModel:
    @pytest.mark.parametrize("name", ["DP1", "DP2", "DP3", "DP4", "DP5"])
    def test_total_energy_close_to_table2(self, name):
        config = DP_CONFIGS[name]
        characterization = DesignPointEnergyModel().characterize(
            config, _num_features(config)
        )
        published = table2_by_name()[name]
        assert characterization.total_energy_mj == pytest.approx(
            published.energy_mj, rel=0.12
        )
        assert characterization.average_power_mw == pytest.approx(
            published.power_mw, rel=0.12
        )

    def test_power_ordering_monotone(self):
        model = DesignPointEnergyModel()
        powers = [
            model.characterize(config, _num_features(config)).average_power_w
            for _, config in table2_specs()
        ]
        assert powers == sorted(powers, reverse=True)

    def test_breakdown_components_sum_to_total(self):
        model = DesignPointEnergyModel()
        config = DP_CONFIGS["DP3"]
        c = model.characterize(config, _num_features(config))
        component_sum = (
            c.mcu_compute_energy_mj
            + c.mcu_acquisition_energy_mj
            + c.mcu_system_energy_mj
            + c.accel_sensor_energy_mj
            + c.stretch_sensor_energy_mj
            + c.energy.communication_mj
        )
        assert component_sum == pytest.approx(c.total_energy_mj, rel=1e-9)

    def test_power_w_helper(self):
        model = DesignPointEnergyModel()
        config = DP_CONFIGS["DP1"]
        assert model.power_w(config, _num_features(config)) == pytest.approx(
            model.characterize(config, _num_features(config)).average_power_w
        )
