"""Tests for the runtime controllers (REAP and static baselines)."""

from __future__ import annotations

import pytest

from repro.core.controller import ReapController, StaticController
from repro.core.schedule import AllocationSeries


class TestReapController:
    def test_allocate_records_decision(self, table2_points):
        controller = ReapController(table2_points, alpha=1.0)
        allocation = controller.allocate(5.0)
        assert len(controller.decisions) == 1
        decision = controller.decisions[0]
        assert decision.energy_budget_j == pytest.approx(5.0)
        assert decision.alpha == pytest.approx(1.0)
        assert decision.allocation is allocation

    def test_run_returns_series_with_budgets(self, table2_points):
        controller = ReapController(table2_points)
        budgets = [1.0, 5.0, 11.0]
        series = controller.run(budgets)
        assert isinstance(series, AllocationSeries)
        assert len(series) == 3
        assert series.budgets_j == budgets

    def test_run_with_labels(self, table2_points):
        controller = ReapController(table2_points)
        series = controller.run([2.0, 4.0], labels=["h0", "h1"])
        assert series.labels == ["h0", "h1"]

    def test_run_label_length_mismatch(self, table2_points):
        controller = ReapController(table2_points)
        with pytest.raises(ValueError):
            controller.run([2.0, 4.0], labels=["only-one"])

    def test_set_alpha_changes_subsequent_decisions(self, table2_points):
        controller = ReapController(table2_points, alpha=1.0)
        balanced = controller.allocate(5.0)
        controller.set_alpha(8.0)
        accurate = controller.allocate(5.0)
        assert controller.decisions[0].alpha == pytest.approx(1.0)
        assert controller.decisions[1].alpha == pytest.approx(8.0)
        # Heavier accuracy weighting shifts time away from DP5.
        assert accurate.time_for("DP5") < balanced.time_for("DP5")

    def test_invalid_alpha_rejected(self, table2_points):
        controller = ReapController(table2_points)
        with pytest.raises(ValueError):
            controller.set_alpha(-2.0)
        with pytest.raises(ValueError):
            ReapController(table2_points, alpha=float("inf"))

    def test_reset_clears_history(self, table2_points):
        controller = ReapController(table2_points)
        controller.allocate(5.0)
        controller.reset()
        assert controller.decisions == []

    def test_invalid_period_rejected(self, table2_points):
        with pytest.raises(ValueError):
            ReapController(table2_points, period_s=0.0)

    def test_objective_never_below_static(self, table2_points):
        budgets = [0.5, 2.0, 5.0, 9.0]
        reap_series = ReapController(table2_points).run(budgets)
        dp3_series = StaticController(table2_points, "DP3").run(budgets)
        for reap_alloc, static_alloc in zip(reap_series, dp3_series):
            assert reap_alloc.objective >= static_alloc.objective - 1e-9


class TestStaticController:
    def test_unknown_design_point_rejected(self, table2_points):
        with pytest.raises(KeyError):
            StaticController(table2_points, "DP42")

    def test_allocation_uses_only_chosen_point(self, table2_points):
        controller = StaticController(table2_points, "DP2")
        allocation = controller.allocate(5.0)
        used = {name for name, t in allocation.as_dict().items() if t > 0}
        assert used == {"DP2"}

    def test_run_matches_repeated_allocate(self, table2_points):
        budgets = [3.0, 6.0]
        controller = StaticController(table2_points, "DP4")
        series = controller.run(budgets)
        fresh = StaticController(table2_points, "DP4")
        singles = [fresh.allocate(b) for b in budgets]
        for from_series, single in zip(series, singles):
            assert from_series.active_time_s == pytest.approx(single.active_time_s)

    def test_set_alpha_affects_reported_objective_only(self, table2_points):
        controller = StaticController(table2_points, "DP1")
        first = controller.allocate(5.0)
        controller.set_alpha(2.0)
        second = controller.allocate(5.0)
        # The schedule is unchanged (same active time) ...
        assert second.active_time_s == pytest.approx(first.active_time_s)
        # ... but the stored alpha (and hence .objective) differs.
        assert second.alpha == pytest.approx(2.0)

    def test_reset_clears_history(self, table2_points):
        controller = StaticController(table2_points, "DP1")
        controller.allocate(1.0)
        controller.reset()
        assert controller.decisions == []

    def test_label_length_mismatch(self, table2_points):
        controller = StaticController(table2_points, "DP1")
        with pytest.raises(ValueError):
            controller.run([1.0], labels=["a", "b"])
