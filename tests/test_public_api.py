"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_subpackage_all_names_resolve(self):
        for module_name in (
            "repro.core",
            "repro.data",
            "repro.har",
            "repro.har.features",
            "repro.har.classifier",
            "repro.energy",
            "repro.harvesting",
            "repro.planning",
            "repro.simulation",
            "repro.analysis",
            "repro.service",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"

    def test_quickstart_docstring_flow(self):
        """The flow shown in the package docstring works as advertised."""
        controller = repro.ReapController(repro.table2_design_points(), alpha=1.0)
        allocation = controller.allocate(energy_budget_j=5.0)
        active = sorted(name for name, t in allocation.as_dict().items() if t > 0)
        assert active == ["DP4", "DP5"]

    def test_paper_constants_exported(self):
        assert repro.ACTIVITY_PERIOD_S == 3600.0
        assert repro.OFF_STATE_POWER_W == pytest.approx(0.18 / 3600.0)

    def test_design_point_roundtrip_through_top_level(self):
        dp = repro.DesignPoint(name="custom", accuracy=0.8, power_w=1.5e-3)
        problem = repro.ReapProblem((dp,), energy_budget_j=3.0)
        allocation = repro.ReapAllocator().solve(problem)
        assert allocation.time_for("custom") > 0
