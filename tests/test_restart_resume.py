"""End-to-end durability tests: SIGKILL a serving process and recover.

These drive ``python -m repro serve`` as real subprocesses -- the only
honest way to test "the campaign id survives SIGKILL":

- kill a server mid-campaign, restart it on the same ``--store`` path,
  and require the job to finish with a FleetResult equal to a local
  single-process run to 1e-9, with every cell journaled exactly once
  (no re-run of journaled shards);
- run ``--procs 2`` front-ends on one SO_REUSEPORT port against one
  store and require both processes to answer, the job to complete with
  no double-run shards, and a clean SIGTERM teardown.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest

import repro
from repro.service.requests import CampaignRequest
from repro.service.store import decode_cells
from repro.simulation.fleet import FleetCampaign

REQUEST = CampaignRequest(hours=200, alphas=(0.5, 1.0), baselines=("DP1", "DP3"))

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _serve(tmp_path, *extra_args):
    """Launch one ``repro serve`` subprocess; returns (proc, port)."""
    port_file = tmp_path / f"port-{time.monotonic_ns()}"
    log_path = tmp_path / f"log-{time.monotonic_ns()}"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", str(port_file), *extra_args],
            env=env, stdout=log, stderr=subprocess.STDOUT,
        )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(
                f"server died during startup:\n{log_path.read_text()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"server never wrote its port:\n{log_path.read_text()}")


def _get(port, path):
    return json.loads(
        urllib.request.urlopen(f"http://127.0.0.1:{port}{path}").read()
    )


def _submit(port, request):
    body = json.dumps(request.to_json_dict()).encode("utf-8")
    raw = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/campaign", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    return json.loads(urllib.request.urlopen(raw).read())


def _wait_done(port, campaign_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = _get(port, f"/v1/campaign/{campaign_id}")
        if status["status"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.1)
    raise TimeoutError(f"campaign {campaign_id} did not finish")


def _cell_journal_counts(store_path):
    """How many times each (scenario, policy) cell was journaled."""
    connection = sqlite3.connect(str(store_path))
    try:
        rows = connection.execute(
            "SELECT payload FROM journal WHERE kind = 'shard_done'"
        ).fetchall()
    finally:
        connection.close()
    counts = {}
    for (payload,) in rows:
        for si, pi, _result in decode_cells(payload):
            counts[(si, pi)] = counts.get((si, pi), 0) + 1
    return counts


def _shard_count(store_path):
    try:
        connection = sqlite3.connect(str(store_path), timeout=1.0)
        try:
            return connection.execute(
                "SELECT COUNT(*) FROM journal WHERE kind = 'shard_done'"
            ).fetchone()[0]
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


@pytest.fixture(scope="module")
def local_reference():
    """The single-process ground truth the recovered run must equal."""
    scenarios, labels, policies, trace, config = REQUEST.build()
    return FleetCampaign(scenarios, config, scenario_labels=labels).run(
        policies, trace
    )


class TestKillAndRecover:
    def test_sigkilled_campaign_resumes_and_matches(
        self, tmp_path, local_reference
    ):
        store = tmp_path / "jobs.db"
        proc, port = _serve(
            tmp_path, "--store", str(store), "--campaign-workers", "2"
        )
        try:
            submitted = _submit(port, REQUEST)
            campaign_id = submitted["campaign_id"]
            assert submitted["status"] in ("queued", "running")
            # Wait for at least one journaled shard, then SIGKILL: the
            # ack was persist-then-ack, so the id must survive.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and _shard_count(store) < 1:
                time.sleep(0.02)
            assert _shard_count(store) >= 1
        finally:
            proc.kill()
            proc.wait(timeout=10)

        proc, port = _serve(
            tmp_path, "--store", str(store), "--campaign-workers", "2"
        )
        try:
            status = _wait_done(port, campaign_id)
            assert status["status"] == "done"
            raw = urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/campaign/{campaign_id}/columns"
            ).read()
        finally:
            proc.kill()
            proc.wait(timeout=10)

        lines = [line for line in raw.split(b"\n") if line.strip()]
        from repro.simulation.fleet import FleetResult

        remote = FleetResult.from_payloads(
            json.loads(lines[0]), (json.loads(line) for line in lines[1:])
        )
        assert remote.policy_names == local_reference.policy_names
        for si, pi, cell in remote:
            reference = local_reference.result(pi, si)
            np.testing.assert_allclose(
                cell.objective_values(),
                reference.objective_values(),
                atol=1e-9,
            )
            np.testing.assert_allclose(
                cell.battery_charge_j, reference.battery_charge_j, atol=1e-9
            )
        # Exactly-once shard accounting: recovery re-ran only the cells
        # the journal was missing, never a journaled one.
        counts = _cell_journal_counts(store)
        assert counts
        assert all(count == 1 for count in counts.values()), counts


@pytest.mark.skipif(
    not hasattr(__import__("socket"), "SO_REUSEPORT"),
    reason="SO_REUSEPORT not available on this platform",
)
class TestMultiProcessFrontend:
    def test_two_procs_share_port_and_store(self, tmp_path):
        store = tmp_path / "jobs.db"
        proc, port = _serve(
            tmp_path, "--store", str(store), "--procs", "2",
            "--campaign-workers", "2",
        )
        try:
            # The kernel load-balances accepted connections: hammering
            # /healthz must eventually reach both processes.
            pids = set()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and len(pids) < 2:
                pids.add(_get(port, "/v1/healthz")["pid"])
                time.sleep(0.01)
            assert len(pids) == 2, f"only {pids} answered"

            submitted = _submit(
                port,
                CampaignRequest(hours=96, alphas=(1.0,), baselines=("DP1",)),
            )
            campaign_id = submitted["campaign_id"]
            # Any front-end can answer for any job (the store is the
            # coordination channel, not process memory).
            status = _wait_done(port, campaign_id)
            assert status["status"] == "done"
            counts = _cell_journal_counts(store)
            assert counts
            assert all(count == 1 for count in counts.values()), counts

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_procs_above_one_requires_store(self, tmp_path):
        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", str(port_file), "--procs", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        _stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 2
        assert b"--store" in stderr
