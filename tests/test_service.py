"""Tests for the allocation service subsystem (repro.service).

Covers the canonical problem encoding (permutation invariance, collision
freedom), the LRU result cache, the micro-batching coalescer (correctness
against the scalar allocator plus the edge cases: empty flush, lone request
on a window timeout, oversize burst splitting) and the full HTTP round trip
client -> server -> BatchAllocator -> client with nothing beyond the
standard library.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.allocator import ReapAllocator
from repro.core.batch import BatchAllocator
from repro.core.design_point import DesignPoint
from repro.data.table2 import table2_design_points
from repro.service.batcher import EngineRegistry, MicroBatcher, solve_batch
from repro.service.cache import AllocationCache, LatencyRecorder
from repro.service.client import AllocationClient, ServiceError
from repro.service.client import main as client_main
from repro.service.requests import AllocationRequest, AllocationResponse
from repro.service.server import AllocationService, start_in_thread


@pytest.fixture(scope="module")
def points():
    return tuple(table2_design_points())


def scalar_solve(request: AllocationRequest, points):
    """Reference answer: the scalar simplex on the same problem."""
    return ReapAllocator().solve(request.resolve(points).to_problem())


class TestCanonicalKeys:
    def test_permuted_design_points_hash_equal(self, points):
        shuffled = (points[3], points[0], points[4], points[2], points[1])
        a = AllocationRequest(5.0, alpha=2.0, design_points=points)
        b = AllocationRequest(5.0, alpha=2.0, design_points=shuffled)
        assert a.cache_key == b.cache_key
        assert a.engine_key == b.engine_key
        assert hash(a.cache_key) == hash(b.cache_key)

    def test_request_key_matches_problem_canonical_key(self, points):
        request = AllocationRequest(3.7, alpha=1.5, design_points=points)
        assert request.cache_key == request.to_problem().canonical_key()

    def test_engine_key_matches_batch_allocator(self, points):
        request = AllocationRequest(1.0, design_points=points)
        assert request.engine_key == BatchAllocator(points).engine_key()

    def test_distinct_budgets_never_collide(self, points):
        keys = {
            AllocationRequest(float(budget), design_points=points).cache_key
            for budget in np.linspace(0.0, 10.4, 400)
        }
        assert len(keys) == 400

    def test_distinct_alphas_never_collide(self, points):
        keys = {
            AllocationRequest(5.0, alpha=float(a), design_points=points).cache_key
            for a in np.linspace(0.25, 4.0, 100)
        }
        assert len(keys) == 100

    def test_period_off_power_and_dp_fields_distinguish(self, points):
        base = AllocationRequest(5.0, design_points=points)
        other_period = AllocationRequest(5.0, design_points=points, period_s=1800.0)
        other_off = AllocationRequest(5.0, design_points=points, off_power_w=1e-4)
        renamed = tuple(
            DesignPoint(name=f"X{i}", accuracy=dp.accuracy, power_w=dp.power_w)
            for i, dp in enumerate(points)
        )
        other_names = AllocationRequest(5.0, design_points=renamed)
        keys = {
            base.cache_key,
            other_period.cache_key,
            other_off.cache_key,
            other_names.cache_key,
        }
        assert len(keys) == 4

    def test_unresolved_and_explicit_default_share_registry_key(self, points):
        registry = EngineRegistry(points)
        implicit = AllocationRequest(5.0)
        explicit = AllocationRequest(5.0, design_points=points)
        assert registry.cache_key_of(implicit) == registry.cache_key_of(explicit)

    def test_unresolved_request_refuses_direct_key(self):
        with pytest.raises(ValueError, match="resolve"):
            AllocationRequest(5.0).cache_key

    def test_json_round_trip_preserves_key(self, points):
        request = AllocationRequest(4.2, alpha=2.0, design_points=points)
        decoded = AllocationRequest.from_json_dict(
            json.loads(json.dumps(request.to_json_dict()))
        )
        assert decoded.cache_key == request.cache_key


class TestAllocationCache:
    def test_lru_eviction_order(self):
        cache: AllocationCache[str] = AllocationCache(max_entries=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refreshes a
        cache.put("c", "C")           # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.stats.evictions == 1

    def test_counters(self):
        cache: AllocationCache[int] = AllocationCache(max_entries=8)
        assert cache.get("missing") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.lookups) == (1, 1, 2)
        assert stats.hit_rate == 0.5
        assert stats.to_json_dict()["lookups"] == 2

    def test_zero_capacity_disables_caching(self):
        cache: AllocationCache[int] = AllocationCache(max_entries=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_latency_recorder(self):
        recorder = LatencyRecorder()
        recorder.record(0.002)
        recorder.record(0.004)
        snapshot = recorder.to_json_dict()
        assert snapshot["solves"] == 2
        assert snapshot["mean_ms"] == pytest.approx(3.0)
        assert snapshot["max_ms"] == pytest.approx(4.0)


class TestSolveBatch:
    def test_matches_scalar_allocator(self, points):
        registry = EngineRegistry(points)
        requests = [
            AllocationRequest(float(budget), alpha=alpha)
            for budget in np.linspace(0.1, 10.4, 23)
            for alpha in (0.5, 1.0, 2.0)
        ]
        responses = solve_batch(requests, registry)
        assert len(responses) == len(requests)
        for request, response in zip(requests, responses):
            reference = scalar_solve(request, points)
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )
            assert response.expected_accuracy == pytest.approx(
                reference.expected_accuracy, abs=1e-9
            )
            assert response.budget_feasible == reference.budget_feasible

    def test_groups_by_design_point_set(self, points):
        registry = EngineRegistry(points)
        subset = points[:3]
        requests = [
            AllocationRequest(5.0),
            AllocationRequest(5.0, design_points=subset),
            AllocationRequest(2.0),
        ]
        responses = solve_batch(requests, registry)
        assert responses[0].batch_size == 2   # the two default-set requests
        assert responses[1].batch_size == 1   # the subset request is alone
        assert len(registry) == 2
        assert set(responses[1].times_s) == {dp.name for dp in subset}

    def test_empty_batch(self):
        assert solve_batch([], EngineRegistry()) == []


class TestMicroBatcher:
    def test_burst_coalesces_into_one_dispatch(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points), window_s=0.005)
            requests = [
                AllocationRequest(float(b)) for b in np.linspace(0.2, 9.9, 32)
            ]
            responses = await batcher.solve_many(requests)
            return responses, batcher.stats

        responses, stats = asyncio.run(scenario())
        assert stats.batches == 1
        assert stats.largest_batch == 32
        assert all(response.batch_size == 32 for response in responses)
        reference = scalar_solve(AllocationRequest(float(responses[5].energy_budget_j)), points)
        assert responses[5].objective == pytest.approx(reference.objective, abs=1e-9)

    def test_window_timeout_with_single_request(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points), window_s=0.001)
            response = await batcher.solve(AllocationRequest(5.0))
            return response, batcher.stats

        response, stats = asyncio.run(scenario())
        assert stats.batches == 1
        assert response.batch_size == 1
        reference = scalar_solve(AllocationRequest(5.0), points)
        assert response.objective == pytest.approx(reference.objective, abs=1e-9)

    def test_oversize_burst_splits_into_chunks(self, points):
        async def scenario():
            batcher = MicroBatcher(
                EngineRegistry(points), window_s=0.05, max_batch=8
            )
            requests = [
                AllocationRequest(float(b)) for b in np.linspace(0.2, 9.9, 20)
            ]
            responses = await batcher.solve_bulk(requests)
            return responses, batcher.stats

        responses, stats = asyncio.run(scenario())
        assert len(responses) == 20
        assert stats.batches == 3            # 8 + 8 + 4
        assert stats.largest_batch == 8
        assert stats.requests == 20
        for response in responses:
            reference = scalar_solve(
                AllocationRequest(response.energy_budget_j), points
            )
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )

    def test_empty_flush_is_a_no_op(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points))
            batcher.flush()
            assert batcher.num_pending == 0
            assert await batcher.solve_bulk([]) == []
            return batcher.stats

        stats = asyncio.run(scenario())
        assert stats.batches == 0
        assert stats.requests == 0

    def test_invalid_request_propagates_to_waiters(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points), window_s=0.001)
            bad = AllocationRequest(5.0)
            object.__setattr__(bad, "energy_budget_j", -1.0)  # corrupt post-validation
            with pytest.raises(ValueError):
                await batcher.solve(bad)

        asyncio.run(scenario())


class TestAllocationService:
    def test_cache_hit_on_repeat(self, points):
        async def scenario():
            service = AllocationService(default_points=points, window_s=0.001)
            first = await service.allocate(AllocationRequest(5.0))
            second = await service.allocate(AllocationRequest(5.0))
            return first, second, service.stats()

        first, second, stats = asyncio.run(scenario())
        assert not first.cache_hit
        assert second.cache_hit
        assert second.objective == first.objective
        assert stats["cache"]["hits"] == 1
        assert stats["batcher"]["batches"] == 1

    def test_permuted_design_points_share_cache_entry(self, points):
        shuffled = tuple(reversed(points))

        async def scenario():
            service = AllocationService(default_points=points, window_s=0.001)
            await service.allocate(AllocationRequest(5.0, design_points=points))
            repeat = await service.allocate(
                AllocationRequest(5.0, design_points=shuffled)
            )
            return repeat

        assert asyncio.run(scenario()).cache_hit

    def test_allocate_many_mixes_hits_and_misses(self, points):
        async def scenario():
            service = AllocationService(default_points=points, window_s=0.001)
            await service.allocate(AllocationRequest(2.0))
            burst = [AllocationRequest(float(b)) for b in (2.0, 4.0, 6.0)]
            return await service.allocate_many(burst)

        responses = asyncio.run(scenario())
        assert [response.cache_hit for response in responses] == [
            True, False, False,
        ]


class TestHttpRoundTrip:
    @pytest.fixture(scope="class")
    def server(self, points):
        service = AllocationService(default_points=points, window_s=0.001)
        handle = start_in_thread(service)
        yield handle
        handle.stop()

    @pytest.fixture()
    def client(self, server):
        return AllocationClient(port=server.port)

    def test_health(self, client):
        assert client.health() == {"status": "ok"}

    def test_allocate_matches_scalar_and_caches(self, client, points):
        request = AllocationRequest(5.0, alpha=1.0)
        reference = scalar_solve(request, points)
        first = client.allocate(request)
        assert first.objective == pytest.approx(reference.objective, abs=1e-9)
        assert first.active_time_s == pytest.approx(
            reference.active_time_s, abs=1e-9
        )
        assert set(first.times_s) == {dp.name for dp in points}
        second = client.allocate(request)
        assert second.cache_hit
        assert second.objective == first.objective

    def test_batch_endpoint_coalesces(self, client, points):
        budgets = np.linspace(0.3, 9.7, 16)
        responses = client.allocate_batch(
            [AllocationRequest(float(b), alpha=2.0) for b in budgets]
        )
        assert len(responses) == 16
        for budget, response in zip(budgets, responses):
            reference = scalar_solve(
                AllocationRequest(float(budget), alpha=2.0), points
            )
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )
        fresh = [r for r in responses if not r.cache_hit]
        assert all(r.batch_size == len(fresh) for r in fresh)

    def test_stats_endpoint(self, client):
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["batcher"]["batches"] >= 1
        assert stats["latency"]["solves"] >= 1
        assert stats["engines"] >= 1

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call("POST", "/allocate", {"alpha": 1.0})  # budget missing
        assert excinfo.value.status == 400

    def test_client_cli_round_trip(self, server, capsys):
        code = client_main(
            ["--port", str(server.port), "allocate", "--budget", "5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget_feasible"] is True
        assert client_main(["--port", str(server.port), "stats"]) == 0
        assert "cache" in json.loads(capsys.readouterr().out)

    def test_client_cli_reports_connection_failure(self, capsys):
        assert client_main(["--port", "1", "health"]) == 1
        assert "failed" in capsys.readouterr().err


class TestResponseCodec:
    def test_json_round_trip(self, points):
        responses = solve_batch(
            [AllocationRequest(5.0)], EngineRegistry(points)
        )
        decoded = AllocationResponse.from_json_dict(
            json.loads(json.dumps(responses[0].to_json_dict()))
        )
        assert decoded == responses[0]
