"""Tests for the allocation service subsystem (repro.service).

Covers the canonical problem encoding (permutation invariance, collision
freedom), the LRU result cache, the micro-batching coalescer (correctness
against the scalar allocator plus the edge cases: empty flush, lone request
on a window timeout, oversize burst splitting), the full HTTP round trip
client -> server -> BatchAllocator -> client with nothing beyond the
standard library, the protocol's error mapping (400 JSON bodies for
malformed requests, 404 for unknown endpoints -- never a 500 traceback)
and the campaign endpoints: submit over HTTP, poll, stream chunked
NDJSON columns back, equal to the local fleet run.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket

import numpy as np
import pytest

from repro.core.allocator import ReapAllocator
from repro.core.batch import BatchAllocator
from repro.core.design_point import DesignPoint
from repro.data.table2 import table2_design_points
from repro.service.batcher import EngineRegistry, MicroBatcher, solve_batch
from repro.service.cache import AllocationCache, LatencyRecorder
from repro.service.client import AllocationClient, ServiceError
from repro.service.client import main as client_main
from repro.service.requests import (
    AllocationRequest,
    AllocationResponse,
    CampaignRequest,
    CampaignResponse,
)
from repro.service.server import AllocationService, start_in_thread
from repro.simulation.fleet import FleetCampaign, FleetResult
from repro.simulation.metrics import CampaignColumns


@pytest.fixture(scope="module")
def points():
    return tuple(table2_design_points())


def scalar_solve(request: AllocationRequest, points):
    """Reference answer: the scalar simplex on the same problem."""
    return ReapAllocator().solve(request.resolve(points).to_problem())


class TestCanonicalKeys:
    def test_permuted_design_points_hash_equal(self, points):
        shuffled = (points[3], points[0], points[4], points[2], points[1])
        a = AllocationRequest(5.0, alpha=2.0, design_points=points)
        b = AllocationRequest(5.0, alpha=2.0, design_points=shuffled)
        assert a.cache_key == b.cache_key
        assert a.engine_key == b.engine_key
        assert hash(a.cache_key) == hash(b.cache_key)

    def test_request_key_matches_problem_canonical_key(self, points):
        request = AllocationRequest(3.7, alpha=1.5, design_points=points)
        assert request.cache_key == request.to_problem().canonical_key()

    def test_engine_key_matches_batch_allocator(self, points):
        request = AllocationRequest(1.0, design_points=points)
        assert request.engine_key == BatchAllocator(points).engine_key()

    def test_distinct_budgets_never_collide(self, points):
        keys = {
            AllocationRequest(float(budget), design_points=points).cache_key
            for budget in np.linspace(0.0, 10.4, 400)
        }
        assert len(keys) == 400

    def test_distinct_alphas_never_collide(self, points):
        keys = {
            AllocationRequest(5.0, alpha=float(a), design_points=points).cache_key
            for a in np.linspace(0.25, 4.0, 100)
        }
        assert len(keys) == 100

    def test_period_off_power_and_dp_fields_distinguish(self, points):
        base = AllocationRequest(5.0, design_points=points)
        other_period = AllocationRequest(5.0, design_points=points, period_s=1800.0)
        other_off = AllocationRequest(5.0, design_points=points, off_power_w=1e-4)
        renamed = tuple(
            DesignPoint(name=f"X{i}", accuracy=dp.accuracy, power_w=dp.power_w)
            for i, dp in enumerate(points)
        )
        other_names = AllocationRequest(5.0, design_points=renamed)
        keys = {
            base.cache_key,
            other_period.cache_key,
            other_off.cache_key,
            other_names.cache_key,
        }
        assert len(keys) == 4

    def test_unresolved_and_explicit_default_share_registry_key(self, points):
        registry = EngineRegistry(points)
        implicit = AllocationRequest(5.0)
        explicit = AllocationRequest(5.0, design_points=points)
        assert registry.cache_key_of(implicit) == registry.cache_key_of(explicit)

    def test_unresolved_request_refuses_direct_key(self):
        with pytest.raises(ValueError, match="resolve"):
            AllocationRequest(5.0).cache_key

    def test_json_round_trip_preserves_key(self, points):
        request = AllocationRequest(4.2, alpha=2.0, design_points=points)
        decoded = AllocationRequest.from_json_dict(
            json.loads(json.dumps(request.to_json_dict()))
        )
        assert decoded.cache_key == request.cache_key


class TestAllocationCache:
    def test_lru_eviction_order(self):
        cache: AllocationCache[str] = AllocationCache(max_entries=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refreshes a
        cache.put("c", "C")           # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.stats.evictions == 1

    def test_counters(self):
        cache: AllocationCache[int] = AllocationCache(max_entries=8)
        assert cache.get("missing") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.lookups) == (1, 1, 2)
        assert stats.hit_rate == 0.5
        assert stats.to_json_dict()["lookups"] == 2

    def test_zero_capacity_disables_caching(self):
        cache: AllocationCache[int] = AllocationCache(max_entries=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_latency_recorder(self):
        recorder = LatencyRecorder()
        recorder.record(0.002)
        recorder.record(0.004)
        snapshot = recorder.to_json_dict()
        assert snapshot["solves"] == 2
        assert snapshot["mean_ms"] == pytest.approx(3.0)
        assert snapshot["max_ms"] == pytest.approx(4.0)


class TestSolveBatch:
    def test_matches_scalar_allocator(self, points):
        registry = EngineRegistry(points)
        requests = [
            AllocationRequest(float(budget), alpha=alpha)
            for budget in np.linspace(0.1, 10.4, 23)
            for alpha in (0.5, 1.0, 2.0)
        ]
        responses = solve_batch(requests, registry)
        assert len(responses) == len(requests)
        for request, response in zip(requests, responses):
            reference = scalar_solve(request, points)
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )
            assert response.expected_accuracy == pytest.approx(
                reference.expected_accuracy, abs=1e-9
            )
            assert response.budget_feasible == reference.budget_feasible

    def test_groups_by_design_point_set(self, points):
        registry = EngineRegistry(points)
        subset = points[:3]
        requests = [
            AllocationRequest(5.0),
            AllocationRequest(5.0, design_points=subset),
            AllocationRequest(2.0),
        ]
        responses = solve_batch(requests, registry)
        assert responses[0].batch_size == 2   # the two default-set requests
        assert responses[1].batch_size == 1   # the subset request is alone
        assert len(registry) == 2
        assert set(responses[1].times_s) == {dp.name for dp in subset}

    def test_empty_batch(self):
        assert solve_batch([], EngineRegistry()) == []


class TestMicroBatcher:
    def test_burst_coalesces_into_one_dispatch(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points), window_s=0.005)
            requests = [
                AllocationRequest(float(b)) for b in np.linspace(0.2, 9.9, 32)
            ]
            responses = await batcher.solve_many(requests)
            return responses, batcher.stats

        responses, stats = asyncio.run(scenario())
        assert stats.batches == 1
        assert stats.largest_batch == 32
        assert all(response.batch_size == 32 for response in responses)
        reference = scalar_solve(AllocationRequest(float(responses[5].energy_budget_j)), points)
        assert responses[5].objective == pytest.approx(reference.objective, abs=1e-9)

    def test_window_timeout_with_single_request(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points), window_s=0.001)
            response = await batcher.solve(AllocationRequest(5.0))
            return response, batcher.stats

        response, stats = asyncio.run(scenario())
        assert stats.batches == 1
        assert response.batch_size == 1
        reference = scalar_solve(AllocationRequest(5.0), points)
        assert response.objective == pytest.approx(reference.objective, abs=1e-9)

    def test_oversize_burst_splits_into_chunks(self, points):
        async def scenario():
            batcher = MicroBatcher(
                EngineRegistry(points), window_s=0.05, max_batch=8
            )
            requests = [
                AllocationRequest(float(b)) for b in np.linspace(0.2, 9.9, 20)
            ]
            responses = await batcher.solve_bulk(requests)
            return responses, batcher.stats

        responses, stats = asyncio.run(scenario())
        assert len(responses) == 20
        assert stats.batches == 3            # 8 + 8 + 4
        assert stats.largest_batch == 8
        assert stats.requests == 20
        for response in responses:
            reference = scalar_solve(
                AllocationRequest(response.energy_budget_j), points
            )
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )

    def test_empty_flush_is_a_no_op(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points))
            batcher.flush()
            assert batcher.num_pending == 0
            assert await batcher.solve_bulk([]) == []
            return batcher.stats

        stats = asyncio.run(scenario())
        assert stats.batches == 0
        assert stats.requests == 0

    def test_invalid_request_propagates_to_waiters(self, points):
        async def scenario():
            batcher = MicroBatcher(EngineRegistry(points), window_s=0.001)
            bad = AllocationRequest(5.0)
            object.__setattr__(bad, "energy_budget_j", -1.0)  # corrupt post-validation
            with pytest.raises(ValueError):
                await batcher.solve(bad)

        asyncio.run(scenario())


class TestAllocationService:
    def test_cache_hit_on_repeat(self, points):
        async def scenario():
            service = AllocationService(default_points=points, window_s=0.001)
            first = await service.allocate(AllocationRequest(5.0))
            second = await service.allocate(AllocationRequest(5.0))
            return first, second, service.stats()

        first, second, stats = asyncio.run(scenario())
        assert not first.cache_hit
        assert second.cache_hit
        assert second.objective == first.objective
        assert stats["cache"]["hits"] == 1
        assert stats["batcher"]["batches"] == 1

    def test_permuted_design_points_share_cache_entry(self, points):
        shuffled = tuple(reversed(points))

        async def scenario():
            service = AllocationService(default_points=points, window_s=0.001)
            await service.allocate(AllocationRequest(5.0, design_points=points))
            repeat = await service.allocate(
                AllocationRequest(5.0, design_points=shuffled)
            )
            return repeat

        assert asyncio.run(scenario()).cache_hit

    def test_allocate_many_mixes_hits_and_misses(self, points):
        async def scenario():
            service = AllocationService(default_points=points, window_s=0.001)
            await service.allocate(AllocationRequest(2.0))
            burst = [AllocationRequest(float(b)) for b in (2.0, 4.0, 6.0)]
            return await service.allocate_many(burst)

        responses = asyncio.run(scenario())
        assert [response.cache_hit for response in responses] == [
            True, False, False,
        ]


class TestHttpRoundTrip:
    @pytest.fixture(scope="class")
    def server(self, points):
        service = AllocationService(default_points=points, window_s=0.001)
        handle = start_in_thread(service)
        yield handle
        handle.stop()

    @pytest.fixture()
    def client(self, server):
        return AllocationClient(port=server.port)

    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["version"]
        assert payload["uptime_s"] >= 0.0
        assert payload["workers"] >= 1
        assert payload["campaign_workers"] >= 1
        assert payload["backend"] in ("numpy", "compiled", "float32")
        assert payload["shared_memory"] in ("auto", "on", "off")

    def test_allocate_matches_scalar_and_caches(self, client, points):
        request = AllocationRequest(5.0, alpha=1.0)
        reference = scalar_solve(request, points)
        first = client.allocate(request)
        assert first.objective == pytest.approx(reference.objective, abs=1e-9)
        assert first.active_time_s == pytest.approx(
            reference.active_time_s, abs=1e-9
        )
        assert set(first.times_s) == {dp.name for dp in points}
        second = client.allocate(request)
        assert second.cache_hit
        assert second.objective == first.objective

    def test_batch_endpoint_coalesces(self, client, points):
        budgets = np.linspace(0.3, 9.7, 16)
        responses = client.allocate_batch(
            [AllocationRequest(float(b), alpha=2.0) for b in budgets]
        )
        assert len(responses) == 16
        for budget, response in zip(budgets, responses):
            reference = scalar_solve(
                AllocationRequest(float(budget), alpha=2.0), points
            )
            assert response.objective == pytest.approx(
                reference.objective, abs=1e-9
            )
        fresh = [r for r in responses if not r.cache_hit]
        assert all(r.batch_size == len(fresh) for r in fresh)

    def test_stats_endpoint(self, client):
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["batcher"]["batches"] >= 1
        assert stats["latency"]["solves"] >= 1
        assert stats["engines"] >= 1

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call("POST", "/allocate", {"alpha": 1.0})  # budget missing
        assert excinfo.value.status == 400

    def test_client_cli_round_trip(self, server, capsys):
        code = client_main(
            ["--port", str(server.port), "allocate", "--budget", "5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget_feasible"] is True
        assert client_main(["--port", str(server.port), "stats", "--json"]) == 0
        assert "cache" in json.loads(capsys.readouterr().out)
        assert client_main(["--port", str(server.port), "stats"]) == 0
        summary = capsys.readouterr().out
        assert "coalescing" in summary
        assert "hit" in summary

    def test_client_cli_reports_connection_failure(self, capsys):
        assert client_main(["--port", "1", "health"]) == 1
        assert "failed" in capsys.readouterr().err


class TestResponseCodec:
    def test_json_round_trip(self, points):
        responses = solve_batch(
            [AllocationRequest(5.0)], EngineRegistry(points)
        )
        decoded = AllocationResponse.from_json_dict(
            json.loads(json.dumps(responses[0].to_json_dict()))
        )
        assert decoded == responses[0]


class TestHttpErrorMapping:
    """Malformed traffic gets 400/404 JSON bodies, never a 500 traceback."""

    @pytest.fixture(scope="class")
    def server(self, points):
        service = AllocationService(default_points=points, window_s=0.001)
        handle = start_in_thread(service)
        yield handle
        handle.stop()
        service.close()

    def _raw(self, server, payload: bytes):
        """Send raw bytes, return (status, decoded JSON body)."""
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5.0
        ) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, json.loads(body.decode("utf-8"))

    def test_malformed_json_body_is_400_with_json_error(self, server):
        body = b'{"energy_budget_j": 5.0'  # truncated JSON
        payload = (
            b"POST /allocate HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
            + body
        )
        status, error = self._raw(server, payload)
        assert status == 400
        assert "invalid JSON body" in error["error"]

    def test_body_shorter_than_content_length_is_400(self, server):
        body = b'{"energy_budget_j": 5.0}'
        payload = (
            b"POST /allocate HTTP/1.1\r\n"
            + f"Content-Length: {len(body) + 64}\r\n\r\n".encode("ascii")
            + body
        )
        status, error = self._raw(server, payload)
        assert status == 400
        assert "Content-Length" in error["error"]

    def test_negative_content_length_is_400(self, server):
        payload = b"POST /allocate HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        status, error = self._raw(server, payload)
        assert status == 400
        assert "Content-Length" in error["error"]

    def test_non_object_json_body_is_400(self, server):
        body = b"[1, 2, 3]"
        payload = (
            b"POST /allocate HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
            + body
        )
        status, error = self._raw(server, payload)
        assert status == 400
        assert "object" in error["error"]

    def test_unknown_endpoint_is_404_with_json_error(self, server):
        status, error = self._raw(server, b"GET /no/such/endpoint HTTP/1.1\r\n\r\n")
        assert status == 404
        assert "/no/such/endpoint" in error["error"]

    def test_malformed_request_line_is_400(self, server):
        status, error = self._raw(server, b"NONSENSE\r\n\r\n")
        assert status == 400
        assert "error" in error


class TestCampaignCodecs:
    def test_campaign_request_round_trip(self):
        request = CampaignRequest(
            alphas=(1.0, 2.0), baselines=("DP1",), exposure_factors=(0.05,),
            month=3, seed=7, hours=24, use_battery=False,
        )
        decoded = CampaignRequest.from_json_dict(
            json.loads(json.dumps(request.to_json_dict()))
        )
        assert decoded == request
        assert decoded.num_cells == 4

    def test_campaign_request_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            CampaignRequest(alphas=())
        with pytest.raises(ValueError, match="exposure"):
            CampaignRequest(exposure_factors=(-0.1,))
        with pytest.raises(ValueError, match="month"):
            CampaignRequest(month=13)
        with pytest.raises(ValueError, match="hours"):
            CampaignRequest(hours=0)
        with pytest.raises(ValueError, match="unknown campaign request"):
            CampaignRequest.from_json_dict({"budget": 5.0})

    def test_campaign_response_round_trip(self):
        response = CampaignResponse(
            campaign_id="c9", status="done", cells=2, trace_hours=48,
            scenario_labels=("exposure=0.032",),
            policy_names=("REAP", "Static-DP1"), alphas=(1.0, 1.0),
            summary=({"policy": "REAP", "mean_objective": 0.5},),
        )
        decoded = CampaignResponse.from_json_dict(
            json.loads(json.dumps(response.to_json_dict()))
        )
        assert decoded == response
        assert decoded.finished

    def test_campaign_response_rejects_unknown_status(self):
        with pytest.raises(ValueError, match="status"):
            CampaignResponse(
                campaign_id="c1", status="exploded", cells=1, trace_hours=1
            )

    def test_columns_json_round_trip_is_lossless(self):
        request = CampaignRequest(hours=24, alphas=(1.0,), baselines=())
        scenarios, labels, policies, trace, config = request.build()
        result = FleetCampaign(scenarios, config, scenario_labels=labels).run(
            policies, trace
        )
        columns = result.result(0).columns
        decoded = CampaignColumns.from_json_dict(
            json.loads(json.dumps(columns.to_json_dict()))
        )
        np.testing.assert_array_equal(
            decoded.objective_value, columns.objective_value
        )
        np.testing.assert_array_equal(
            decoded.times_by_design_point_s, columns.times_by_design_point_s
        )
        assert decoded.design_point_names == columns.design_point_names
        assert np.array_equal(decoded.period_index, columns.period_index)


class TestCampaignHttp:
    """Submit over HTTP, poll, stream chunked columns, match the local run."""

    REQUEST = CampaignRequest(hours=48, alphas=(1.0, 2.0), baselines=("DP1",))

    @pytest.fixture(scope="class")
    def server(self, points):
        service = AllocationService(
            default_points=points, window_s=0.001, workers=2,
            campaign_workers=2,
        )
        handle = start_in_thread(service)
        yield handle
        handle.stop()
        service.close()

    @pytest.fixture(scope="class")
    def client(self, server):
        return AllocationClient(port=server.port, timeout_s=120.0)

    @pytest.fixture(scope="class")
    def finished(self, client):
        """One campaign driven to completion, shared by the tests below."""
        submitted = client.submit_campaign(self.REQUEST)
        status = client.wait_for_campaign(submitted.campaign_id, timeout_s=120)
        return submitted, status

    def test_submit_returns_pending_id(self, finished):
        submitted, _ = finished
        assert submitted.campaign_id
        assert submitted.status in ("queued", "running")
        assert submitted.cells == self.REQUEST.num_cells

    def test_polled_status_carries_summary(self, finished):
        _, status = finished
        assert status.status == "done"
        assert status.cells == self.REQUEST.num_cells
        assert status.trace_hours == 48
        assert len(status.summary) == status.cells
        assert {entry["policy"] for entry in status.summary} == {
            "REAP", "Static-DP1",
        }

    def test_streamed_columns_match_local_fleet_run(self, client, finished):
        submitted, _ = finished
        remote = client.campaign_result(submitted.campaign_id)
        scenarios, labels, policies, trace, config = self.REQUEST.build()
        local = FleetCampaign(scenarios, config, scenario_labels=labels).run(
            policies, trace
        )
        assert remote.policy_names == local.policy_names
        for scenario_index, policy_index, cell in remote:
            reference = local.result(policy_index, scenario_index)
            np.testing.assert_allclose(
                cell.objective_values(),
                reference.objective_values(),
                atol=1e-9,
            )
            np.testing.assert_allclose(
                cell.battery_charge_j, reference.battery_charge_j, atol=1e-9
            )
            assert abs(
                cell.total_energy_consumed_j
                - reference.total_energy_consumed_j
            ) <= 1e-9

    def test_stream_is_chunked_ndjson(self, server, finished):
        submitted, _ = finished
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30.0
        )
        try:
            connection.request(
                "GET", f"/campaign/{submitted.campaign_id}/columns"
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Transfer-Encoding") == "chunked"
            assert response.getheader("Content-Type") == "application/x-ndjson"
            lines = [line for line in response if line.strip()]
        finally:
            connection.close()
        meta = json.loads(lines[0])
        assert meta["trace_hours"] == 48
        assert len(lines) == 1 + self.REQUEST.num_cells

    def test_unknown_campaign_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.campaign_status("nope")
        assert excinfo.value.status == 404

    def test_columns_before_done_is_409(self, client, points):
        # A fresh submission is queued/running for at least a moment.
        submitted = client.submit_campaign(
            CampaignRequest(hours=400, alphas=(1.0,), baselines=("DP1", "DP3"))
        )
        try:
            client.campaign_result(submitted.campaign_id)
        except ServiceError as error:
            assert error.status == 409
        else:  # pragma: no cover - tiny race, but the stream must be valid
            pass
        client.wait_for_campaign(submitted.campaign_id, timeout_s=120)

    def test_invalid_campaign_request_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call("POST", "/campaign", {"alphas": []})
        assert excinfo.value.status == 400

    def test_client_cli_campaign_round_trip(self, server, capsys):
        code = client_main(
            [
                "--port", str(server.port), "--timeout", "120",
                "campaign", "run", "--hours", "24",
                "--alphas", "1", "--baselines", "DP1",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "done"
        assert payload["cells"] == 2
        code = client_main(
            [
                "--port", str(server.port), "--timeout", "120",
                "campaign", "columns", payload["campaign_id"],
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 + payload["cells"]
        assert json.loads(lines[0])["trace_hours"] == 24

    def test_fleet_result_from_payloads_refuses_partial_grids(self):
        meta = {
            "scenario_labels": ["S0"], "policy_names": ["A", "B"],
            "alphas": [1.0, 1.0], "trace_hours": 4,
        }
        with pytest.raises(ValueError, match="unfilled"):
            FleetResult.from_payloads(meta, [])


class TestCampaignHousekeeping:
    def test_finished_campaigns_evicted_beyond_cap(self, points):
        async def scenario():
            service = AllocationService(
                default_points=points, campaign_workers=1, max_campaigns=2
            )
            request = CampaignRequest(hours=4, alphas=(1.0,), baselines=())
            jobs = []
            for _ in range(3):
                submitted = await service.submit_campaign(request)
                # Sequential completion keeps the eviction order
                # deterministic: the oldest finished job goes first.
                await service.campaign(submitted.campaign_id).task
                jobs.append(submitted)
            retained = [
                job.campaign_id for job in jobs
                if job.campaign_id in service._campaigns
            ]
            service.close()
            return jobs, retained

        jobs, retained = asyncio.run(scenario())
        assert retained == [jobs[1].campaign_id, jobs[2].campaign_id]

    def test_max_campaigns_validation(self, points):
        with pytest.raises(ValueError, match="max_campaigns"):
            AllocationService(default_points=points, max_campaigns=0)

    def test_campaign_simulates_the_service_design_points(self, points):
        subset = tuple(points[:3])  # DP1..DP3 hardware only

        async def scenario():
            service = AllocationService(
                default_points=subset, campaign_workers=1
            )
            submitted = await service.submit_campaign(
                CampaignRequest(hours=4, alphas=(1.0,), baselines=("DP2",))
            )
            await service.campaign(submitted.campaign_id).task
            job = service.campaign(submitted.campaign_id)
            assert job.status == "done", job.error
            result = job.result
            service.close()
            return result

        result = asyncio.run(scenario())
        columns = result.result(0).columns
        assert set(columns.design_point_names) == {dp.name for dp in subset}


class TestCampaignPlanningFields:
    def test_planning_fields_round_trip(self):
        request = CampaignRequest(
            alphas=(1.0,), baselines=("DP1",), hours=48,
            planners=("horizon", "mpc"), horizon_periods=12,
            forecast="noisy", forecast_noise=0.3, forecast_seed=9,
        )
        decoded = CampaignRequest.from_json_dict(
            json.loads(json.dumps(request.to_json_dict()))
        )
        assert decoded == request
        # One REAP + one baseline + two planners, at one alpha.
        assert decoded.num_policies == 4

    def test_planning_fields_are_validated(self):
        with pytest.raises(ValueError, match="planner"):
            CampaignRequest(planners=("oracle",))
        with pytest.raises(ValueError, match="forecast"):
            CampaignRequest(forecast="psychic")
        with pytest.raises(ValueError, match="horizon"):
            CampaignRequest(horizon_periods=0)
        with pytest.raises(ValueError, match="noise"):
            CampaignRequest(forecast_noise=-1.0)
        with pytest.raises(ValueError, match="battery"):
            # Planners without a battery would silently collapse to REAP.
            CampaignRequest(planners=("horizon",), use_battery=False)

    def test_build_materialises_planning_policies(self):
        request = CampaignRequest(
            alphas=(1.0,), baselines=(), hours=24,
            planners=("horizon", "mpc"), horizon_periods=6,
            forecast="persistence",
        )
        _, _, policies, _, _ = request.build()
        assert [policy.name for policy in policies] == [
            "REAP", "Horizon6-persistence", "MPC6-persistence",
        ]


class TestPlanningCampaignHttp:
    """A planning campaign over HTTP equals the local fleet run to 1e-9."""

    REQUEST = CampaignRequest(
        hours=48, alphas=(1.0,), baselines=("DP1",),
        planners=("horizon", "mpc"), horizon_periods=8,
        forecast="persistence",
    )

    def test_remote_planning_campaign_matches_local(self, points):
        service = AllocationService(
            default_points=points, campaign_workers=2
        )
        with start_in_thread(service) as handle:
            client = AllocationClient(port=handle.port, timeout_s=120.0)
            status, remote = client.run_campaign(self.REQUEST, timeout_s=120)
        service.close()
        assert status.status == "done"
        assert set(status.policy_names) == {
            "REAP", "Static-DP1", "Horizon8-persistence", "MPC8-persistence",
        }
        scenarios, labels, policies, trace, config = self.REQUEST.build(points)
        local = FleetCampaign(scenarios, config, scenario_labels=labels).run(
            policies, trace
        )
        for scenario_index, policy_index, cell in remote:
            reference = local.result(policy_index, scenario_index)
            np.testing.assert_allclose(
                cell.objective_values(),
                reference.objective_values(),
                rtol=0, atol=1e-9,
            )
            np.testing.assert_allclose(
                cell.battery_charge_j,
                reference.battery_charge_j,
                rtol=0, atol=1e-9,
            )


class TestCampaignDelete:
    """DELETE /campaign/<id>: finished jobs vanish; the id 404s afterward."""

    @pytest.fixture(scope="class")
    def server(self, points):
        service = AllocationService(default_points=points, campaign_workers=1)
        handle = start_in_thread(service)
        yield handle
        handle.stop()
        service.close()

    @pytest.fixture(scope="class")
    def client(self, server):
        return AllocationClient(port=server.port, timeout_s=60.0)

    def test_deleted_campaign_is_gone(self, client):
        request = CampaignRequest(hours=4, alphas=(1.0,), baselines=())
        submitted = client.submit_campaign(request)
        client.wait_for_campaign(submitted.campaign_id, timeout_s=60)
        payload = client.delete_campaign(submitted.campaign_id)
        assert payload == {
            "campaign_id": submitted.campaign_id, "deleted": True,
        }
        # Status, columns and a second delete all 404 now.
        for call in (
            lambda: client.campaign_status(submitted.campaign_id),
            lambda: list(client.campaign_payloads(submitted.campaign_id)),
            lambda: client.delete_campaign(submitted.campaign_id),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_delete_unknown_campaign_404s(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.delete_campaign("never-submitted")
        assert excinfo.value.status == 404

    def test_delete_refuses_unfinished_jobs(self, points):
        from repro.service.server import CampaignJob

        service = AllocationService(default_points=points)
        job = CampaignJob("c-running", CampaignRequest(hours=4))
        job.status = "running"
        service._campaigns[job.campaign_id] = job
        with pytest.raises(RuntimeError, match="running"):
            service.delete_campaign(job.campaign_id)
        assert service.campaign(job.campaign_id) is job  # still retained
        service.close()

    def test_delete_verb_on_the_client_cli(self, server, capsys):
        request = CampaignRequest(hours=4, alphas=(1.0,), baselines=())
        client = AllocationClient(port=server.port, timeout_s=60.0)
        submitted = client.submit_campaign(request)
        client.wait_for_campaign(submitted.campaign_id, timeout_s=60)
        exit_code = client_main([
            "--port", str(server.port), "campaign", "delete",
            submitted.campaign_id,
        ])
        assert exit_code == 0
        assert '"deleted": true' in capsys.readouterr().out
        exit_code = client_main([
            "--port", str(server.port), "campaign", "status",
            submitted.campaign_id,
        ])
        assert exit_code == 1  # 404 after deletion
