"""Tests for the vectorized batch allocation engine (repro.core.batch).

The central property: on any (budget, alpha) grid, :class:`BatchAllocator`
reproduces the objectives of the scalar :class:`ReapAllocator` -- for all
three formulations -- within 1e-9, and its winning vertices coincide with
the analytic solver's.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import FORMULATIONS, AllocatorConfig, ReapAllocator
from repro.core.analytic import solve_analytic
from repro.core.batch import BatchAllocator, BatchGridResult
from repro.core.design_point import DesignPoint
from repro.core.problem import ReapProblem, static_allocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.data.table2 import table2_design_points


def design_point_lists(min_size=1, max_size=6):
    """Random, uniquely named design-point sets."""
    point = st.tuples(
        st.floats(min_value=0.05, max_value=1.0),      # accuracy
        st.floats(min_value=1e-4, max_value=5e-3),     # power in W
    )
    return st.lists(point, min_size=min_size, max_size=max_size).map(
        lambda pairs: [
            DesignPoint(name=f"P{i}", accuracy=a, power_w=p)
            for i, (a, p) in enumerate(pairs)
        ]
    )


budget_grids = st.lists(
    st.floats(min_value=0.0, max_value=25.0), min_size=1, max_size=6
)
alpha_grids = st.lists(
    st.floats(min_value=0.0, max_value=8.0), min_size=1, max_size=3
)


class TestBatchMatchesScalarSolvers:
    @settings(max_examples=25, deadline=None)
    @given(points=design_point_lists(), budgets=budget_grids, alphas=alpha_grids)
    def test_objectives_match_all_formulations(self, points, budgets, alphas):
        """Batch objectives equal every scalar formulation's within 1e-9."""
        grid = BatchAllocator(tuple(points)).solve_grid(budgets, alphas)
        allocators = {
            formulation: ReapAllocator(AllocatorConfig(formulation=formulation))
            for formulation in FORMULATIONS
        }
        for alpha_index, alpha in enumerate(grid.alphas):
            for budget_index, budget in enumerate(grid.budgets_j):
                problem = ReapProblem(
                    tuple(points),
                    energy_budget_j=float(budget),
                    alpha=float(alpha),
                    off_power_w=OFF_STATE_POWER_W,
                )
                batch_objective = grid.objective[alpha_index, budget_index]
                for formulation, allocator in allocators.items():
                    scalar = allocator.solve(problem)
                    assert batch_objective == pytest.approx(
                        scalar.objective, rel=1e-9, abs=1e-9
                    ), (formulation, float(budget), float(alpha))

    @settings(max_examples=25, deadline=None)
    @given(points=design_point_lists(), budgets=budget_grids, alphas=alpha_grids)
    def test_allocations_are_feasible_and_optimal(self, points, budgets, alphas):
        """Every materialised cell is feasible and achieves the exact optimum.

        Under exact objective ties (e.g. equal-accuracy design points) the
        batch engine may legitimately pick a different vertex than the
        analytic solver, so the contract is the optimal value, not the
        identical time vector.
        """
        grid = BatchAllocator(tuple(points)).solve_grid(budgets, alphas)
        for alpha_index, alpha in enumerate(grid.alphas):
            for budget_index, budget in enumerate(grid.budgets_j):
                allocation = grid.allocation(alpha_index, budget_index)
                allocation.check(float(budget))
                reference = solve_analytic(
                    ReapProblem(
                        tuple(points),
                        energy_budget_j=float(budget),
                        alpha=float(alpha),
                    )
                )
                assert allocation.objective == pytest.approx(
                    reference.objective, rel=1e-9, abs=1e-9
                )

    @settings(max_examples=20, deadline=None)
    @given(points=design_point_lists(min_size=2), budgets=budget_grids)
    def test_static_grid_matches_scalar_static_allocation(self, points, budgets):
        engine = BatchAllocator(tuple(points))
        for dp in points:
            series = engine.static_grid(dp.name, budgets, alpha=2.0)
            for budget_index, budget in enumerate(series.budgets_j):
                problem = ReapProblem(
                    tuple(points), energy_budget_j=float(budget), alpha=2.0
                )
                reference = static_allocation(problem, dp.name)
                assert series.objective[budget_index] == pytest.approx(
                    reference.objective, rel=1e-9, abs=1e-12
                )
                assert series.active_time_s[budget_index] == pytest.approx(
                    reference.active_time_s, rel=1e-9, abs=1e-6
                )


class TestBatchGridResult:
    def setup_method(self):
        self.points = tuple(table2_design_points())
        self.engine = BatchAllocator(self.points)

    def test_grid_shapes_and_metadata(self):
        budgets = np.linspace(0.0, 11.0, 17)
        alphas = (0.5, 1.0, 2.0)
        grid = self.engine.solve_grid(budgets, alphas)
        assert isinstance(grid, BatchGridResult)
        assert grid.num_budgets == 17 and grid.num_alphas == 3
        assert grid.objective.shape == (3, 17)
        assert grid.times_s.shape == (3, 17, 5)
        assert grid.off_time_s.shape == (3, 17)
        assert grid.period_s == ACTIVITY_PERIOD_S

    def test_infeasible_budgets_flagged_and_all_off(self):
        grid = self.engine.solve_budgets([0.0, 0.05, 5.0])
        assert list(grid.budget_feasible) == [False, False, True]
        assert np.all(grid.times_s[0, :2] == 0.0)
        assert grid.objective[0, 0] == 0.0
        allocation = grid.allocation(0, 0)
        assert not allocation.budget_feasible
        assert allocation.active_time_s == 0.0

    def test_known_5j_blend(self):
        """At 5 J / alpha=1 the optimum is the DP4/DP5 blend of Section 5.2."""
        grid = self.engine.solve_budgets([5.0])
        allocation = grid.allocation(0, 0)
        active = sorted(name for name, t in allocation.as_dict().items() if t > 0)
        assert active == ["DP4", "DP5"]
        assert allocation.energy_j == pytest.approx(5.0, rel=1e-9)

    def test_objective_monotone_in_budget_and_saturates(self):
        budgets = np.linspace(0.2, 12.0, 100)
        grid = self.engine.solve_budgets(budgets)
        objective = grid.objective[0]
        assert np.all(np.diff(objective) >= -1e-12)
        # Past DP1's full-hour energy the optimum is pinned at DP1 accuracy.
        saturated = budgets >= self.engine.max_useful_energy_j
        assert np.allclose(objective[saturated], max(dp.accuracy for dp in self.points))

    def test_allocations_materialise_lazily(self):
        grid = self.engine.solve_budgets(np.linspace(0.2, 10.0, 7), alpha=2.0)
        allocations = grid.allocations(0)
        assert len(allocations) == 7
        for budget, allocation in zip(grid.budgets_j, allocations):
            assert allocation.alpha == 2.0
            assert allocation.budget_j == pytest.approx(float(budget))

    def test_solve_allocations_equals_scalar_loop(self):
        budgets = np.linspace(0.2, 10.0, 9)
        batch = self.engine.solve_allocations(budgets, alpha=1.0)
        allocator = ReapAllocator()
        for budget, allocation in zip(budgets, batch):
            scalar = allocator.solve(
                ReapProblem(self.points, energy_budget_j=float(budget), alpha=1.0)
            )
            assert allocation.objective == pytest.approx(
                scalar.objective, rel=1e-9, abs=1e-12
            )


class TestBatchAllocatorValidation:
    def test_rejects_bad_parameters(self):
        points = tuple(table2_design_points())
        with pytest.raises(ValueError):
            BatchAllocator(points, period_s=0.0)
        with pytest.raises(ValueError):
            BatchAllocator(points, off_power_w=-1.0)
        engine = BatchAllocator(points)
        with pytest.raises(ValueError):
            engine.solve_grid([])
        with pytest.raises(ValueError):
            engine.solve_grid([1.0], alphas=[])
        with pytest.raises(ValueError):
            engine.solve_grid([-1.0])
        with pytest.raises(ValueError):
            engine.solve_grid([1.0], alphas=[-0.5])
        with pytest.raises(KeyError):
            engine.static_grid("DP99", [1.0])

    def test_from_problem_copies_fixed_parameters(self):
        problem = ReapProblem(
            tuple(table2_design_points()),
            energy_budget_j=5.0,
            period_s=1800.0,
            off_power_w=1e-4,
        )
        engine = BatchAllocator.from_problem(problem)
        assert engine.period_s == 1800.0
        assert engine.off_power_w == 1e-4
        assert engine.min_required_energy_j == pytest.approx(1e-4 * 1800.0)

    def test_candidate_vertex_count(self):
        engine = BatchAllocator(tuple(table2_design_points()))
        # off + 5 singles + C(5, 2) pairs (all Table 2 powers are distinct)
        assert engine.num_candidate_vertices == 1 + 5 + 10

    def test_identical_powers_handled_via_single_vertices(self):
        points = (
            DesignPoint(name="A", accuracy=0.9, power_w=2e-3),
            DesignPoint(name="B", accuracy=0.7, power_w=2e-3),
        )
        engine = BatchAllocator(points)
        assert engine.num_candidate_vertices == 1 + 2  # singular pair dropped
        grid = engine.solve_budgets([4.0])
        reference = solve_analytic(
            ReapProblem(points, energy_budget_j=4.0, alpha=1.0)
        )
        assert grid.objective[0, 0] == pytest.approx(reference.objective, rel=1e-12)


class TestKinkTieBreak:
    """Regression: the argmax at exact consumption-curve kinks is pinned.

    At the exact kink budget ``P_i * T`` a saturated single vertex ties
    with its zero-time pair blends to within round-off.  The snapped
    tie-break (any candidate within the tolerance of the maximum counts,
    earliest wins) must resolve every such tie to the *pure* single vertex
    running the full period -- on every backend -- so the chosen vertex
    cannot flip between runs, budgets epsilon apart, or numeric backends.
    """

    @staticmethod
    def _hull_indices(points, alpha):
        """Design points whose pure vertex is optimal at its own kink.

        Only value-hull members can win at their saturation budget:
        dominated points are beaten there by a blend of their hull
        neighbours, so the tie in question never arises for them.
        """
        from repro.core import kernels

        tables = kernels.build_solve_tables(
            np.array([dp.power_w for dp in points]),
            np.array([dp.accuracy for dp in points]),
            alpha, ACTIVITY_PERIOD_S, OFF_STATE_POWER_W,
        )
        assert tables is not None
        return [int(i) for i in tables[2] if i >= 0]

    @pytest.mark.parametrize("backend", ["numpy", "compiled", "float32"])
    def test_exact_kink_budget_pins_the_pure_vertex(self, backend):
        points = tuple(table2_design_points())
        engine = BatchAllocator(points, backend=backend)
        for index in self._hull_indices(points, alpha=1.0):
            dp = points[index]
            kink = dp.power_w * ACTIVITY_PERIOD_S        # exact saturation
            arrays = engine.solve_arrays([kink], alpha=1.0)
            times = arrays.times_s[0]
            # The winner is the pure single vertex: DP i runs the whole
            # period, every other time is exactly zero.
            assert times[index] == pytest.approx(
                ACTIVITY_PERIOD_S, rel=0, abs=ACTIVITY_PERIOD_S * 1e-6
            ), (backend, dp.name)
            others = np.delete(times, index)
            np.testing.assert_allclose(
                others, 0.0, rtol=0, atol=ACTIVITY_PERIOD_S * 1e-6,
                err_msg=f"{backend}/{dp.name}: kink tie not snapped",
            )

    def test_kink_neighbourhood_is_stable(self):
        # Budgets one float64 ulp either side of the kink must not change
        # the winning vertex support (the tie tolerance dwarfs one ulp).
        points = tuple(table2_design_points())
        engine = BatchAllocator(points)
        for index in self._hull_indices(points, alpha=1.0):
            dp = points[index]
            kink = dp.power_w * ACTIVITY_PERIOD_S
            for budget in (np.nextafter(kink, 0.0), kink, np.nextafter(kink, np.inf)):
                times = engine.solve_arrays([budget], alpha=1.0).times_s[0]
                support = {
                    points[i].name for i in range(len(points))
                    if times[i] > ACTIVITY_PERIOD_S * 1e-9
                }
                assert support == {dp.name}, (dp.name, float(budget))

    def test_tie_break_matches_analytic_winner(self):
        # The analytic solver enumerates candidates in the same (off,
        # singles, pairs) order; at kinks both must report the same
        # single-point support.
        points = tuple(table2_design_points())
        engine = BatchAllocator(points)
        for index in self._hull_indices(points, alpha=1.0):
            dp = points[index]
            kink = dp.power_w * ACTIVITY_PERIOD_S
            reference = solve_analytic(
                ReapProblem(points, energy_budget_j=kink, alpha=1.0)
            )
            batch = engine.solve_arrays([kink], alpha=1.0)
            ref_support = {
                name for name, t in reference.as_dict().items() if t > 1e-6
            }
            batch_support = {
                points[i].name for i in range(len(points))
                if batch.times_s[0, i] > 1e-6
            }
            assert batch_support == ref_support == {dp.name}
