"""Tests for the harvested-energy forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harvesting.forecast import (
    ClearSkyScaledForecaster,
    EwmaForecaster,
    PersistenceForecaster,
    forecast_error,
)
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario


@pytest.fixture(scope="module")
def harvest_trace():
    """Three days of hourly harvested energy from the synthetic model."""
    trace = SyntheticSolarModel(seed=11).generate_days(244, 3)
    return HarvestScenario().budgets_from_trace(trace)


class TestPersistenceForecaster:
    def test_repeats_yesterdays_value(self):
        forecaster = PersistenceForecaster(periods_per_day=4)
        day_one = [1.0, 2.0, 3.0, 4.0]
        for value in day_one:
            forecaster.observe(value)
        assert forecaster.forecast(4) == day_one

    def test_initial_forecast_is_initial_value(self):
        forecaster = PersistenceForecaster(periods_per_day=3, initial_j=0.5)
        assert forecaster.forecast(3) == [0.5, 0.5, 0.5]

    def test_horizon_wraps_around_the_day(self):
        forecaster = PersistenceForecaster(periods_per_day=2)
        forecaster.observe(1.0)
        forecaster.observe(2.0)
        assert forecaster.forecast(4) == [1.0, 2.0, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PersistenceForecaster(periods_per_day=0)
        with pytest.raises(ValueError):
            PersistenceForecaster(initial_j=-1.0)
        forecaster = PersistenceForecaster()
        with pytest.raises(ValueError):
            forecaster.forecast(0)
        with pytest.raises(ValueError):
            forecaster.observe(-1.0)

    def test_perfectly_periodic_trace_has_zero_error_after_first_day(self):
        day = [0.0, 0.0, 3.0, 6.0, 3.0, 0.0]
        trace = day * 4
        forecaster = PersistenceForecaster(periods_per_day=len(day))
        predictions = forecaster.run(trace)
        errors = np.abs(np.array(predictions[len(day):]) - np.array(trace[len(day):]))
        assert np.max(errors) == pytest.approx(0.0)


class TestEwmaForecaster:
    def test_converges_to_constant_input(self):
        forecaster = EwmaForecaster(periods_per_day=1, smoothing=0.5)
        for _ in range(20):
            forecaster.observe(4.0)
        assert forecaster.forecast(1)[0] == pytest.approx(4.0, rel=1e-3)

    def test_smoothing_bounds(self):
        with pytest.raises(ValueError):
            EwmaForecaster(smoothing=0.0)
        with pytest.raises(ValueError):
            EwmaForecaster(smoothing=1.5)

    def test_per_slot_estimates_are_independent(self):
        forecaster = EwmaForecaster(periods_per_day=2, smoothing=1.0)
        forecaster.observe(10.0)   # slot 0
        forecaster.observe(1.0)    # slot 1
        assert forecaster.forecast(2) == [10.0, 1.0]

    def test_better_than_persistence_on_noisy_but_stationary_slot(self, rng):
        # Each day the same profile plus noise: once warmed up, EWMA averages
        # the noise out while persistence repeats it verbatim.
        day = np.array([0.0, 2.0, 5.0, 2.0])
        trace = []
        for _ in range(40):
            trace.extend((day + rng.normal(0, 0.4, size=4)).clip(min=0.0))
        ewma_forecaster = EwmaForecaster(periods_per_day=4, smoothing=0.3)
        persistence_forecaster = PersistenceForecaster(periods_per_day=4)
        ewma_predictions = np.array(ewma_forecaster.run(trace))
        persistence_predictions = np.array(persistence_forecaster.run(trace))
        actual = np.array(trace)
        warmup = 20 * 4  # skip the cold-start transient
        ewma_rmse = np.sqrt(np.mean((ewma_predictions[warmup:] - actual[warmup:]) ** 2))
        persistence_rmse = np.sqrt(
            np.mean((persistence_predictions[warmup:] - actual[warmup:]) ** 2)
        )
        assert ewma_rmse < persistence_rmse


class TestClearSkyScaledForecaster:
    def test_night_slots_forecast_zero(self):
        forecaster = ClearSkyScaledForecaster(day_of_year=244)
        # Slot 0 is midnight-ish: clear-sky harvest is zero.
        assert forecaster.forecast(1)[0] == pytest.approx(0.0)

    def test_clearness_adapts_downward_on_cloudy_observations(self):
        forecaster = ClearSkyScaledForecaster(day_of_year=244, initial_clearness=1.0,
                                              smoothing=0.5)
        # Observe a heavily clouded noon (slot 12) repeatedly.
        for _ in range(3):
            forecaster._period_index = 12
            ceiling = forecaster.clear_sky_harvest_j(12)
            forecaster.observe(0.2 * ceiling)
        assert forecaster.clearness < 0.6

    def test_night_observations_do_not_change_clearness(self):
        forecaster = ClearSkyScaledForecaster(initial_clearness=0.7)
        before = forecaster.clearness
        forecaster.observe(0.0)   # midnight slot, clear-sky ceiling is zero
        assert forecaster.clearness == pytest.approx(before)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClearSkyScaledForecaster(smoothing=0.0)
        with pytest.raises(ValueError):
            ClearSkyScaledForecaster(initial_clearness=1.5)


class TestForecastError:
    def test_error_keys_and_sanity(self, harvest_trace):
        metrics = forecast_error(EwmaForecaster(), harvest_trace)
        assert set(metrics) == {"mae_j", "rmse_j", "bias_j", "num_periods"}
        assert metrics["num_periods"] == len(harvest_trace)
        assert metrics["rmse_j"] >= metrics["mae_j"] >= 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            forecast_error(EwmaForecaster(), [])

    def test_clear_sky_forecaster_reasonable_on_synthetic_trace(self, harvest_trace):
        metrics = forecast_error(
            ClearSkyScaledForecaster(day_of_year=244), harvest_trace
        )
        # Error stays well below the peak hourly harvest (~10 J).
        assert metrics["rmse_j"] < 5.0
