"""Tests of the forecast-driven planning subsystem (repro.planning).

Covers the forecast providers (including the persistence forecaster's
no-history first day and noisy-oracle determinism), the horizon planners'
degraded regimes (zero-harvest windows and all-infeasible budgets must
fall back to the static off-floor allocation, never raise), the
vectorized :class:`~repro.planning.scan.PlanScan` against the scalar
reference loop to 1e-9, and the end-to-end wiring through
:class:`~repro.simulation.fleet.FleetCampaign`, process sharding and the
``plan`` experiment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    run_fleet_campaign_experiment,
    run_plan_experiment,
)
from repro.core.batch import StackedConsumptionCurves
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.data.table2 import table2_design_points
from repro.energy.fleet import BatteryScan
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace, TraceHour
from repro.planning import (
    HorizonAverageAllocator,
    MpcPlanner,
    NoisyOracleForecast,
    PerfectForecast,
    PersistenceForecast,
    PlanBattery,
    PlanScan,
    make_forecast_provider,
)
from repro.simulation.fleet import CampaignConfig, FleetCampaign
from repro.simulation.policies import PlanningPolicy, ReapPolicy, StaticPolicy
from repro.simulation.simulator import HarvestingCampaign

OFF_FLOOR_J = OFF_STATE_POWER_W * ACTIVITY_PERIOD_S


@pytest.fixture(scope="module")
def points():
    return tuple(table2_design_points())


def _trace(hours: int, seed: int = 2015, month: int = 9) -> SolarTrace:
    trace = SyntheticSolarModel(seed=seed).generate_month(month)
    return SolarTrace(trace.hours[:hours], name=trace.name)


def _dark_trace(hours: int) -> SolarTrace:
    return SolarTrace(
        [
            TraceHour(
                day_of_year=1 + index // 24,
                hour_of_day=index % 24,
                ghi_w_per_m2=0.0,
            )
            for index in range(hours)
        ],
        name="dark",
    )


def _budgets(result) -> np.ndarray:
    columns = result.columns
    if columns is not None:
        return np.asarray(columns.energy_budget_j, dtype=float)
    return np.array([outcome.energy_budget_j for outcome in result.outcomes])


# ---------------------------------------------------------------------------
# Forecast providers
# ---------------------------------------------------------------------------

class TestForecastProviders:
    def test_perfect_matrix_is_the_shifted_future(self):
        harvest = np.array([1.0, 2.0, 3.0, 4.0])
        matrix = PerfectForecast().matrix(harvest, horizon=3)
        assert matrix.shape == (4, 3)
        np.testing.assert_allclose(matrix[0], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(matrix[2], [3.0, 4.0, 0.0])  # zero past end
        np.testing.assert_allclose(matrix[3], [4.0, 0.0, 0.0])

    def test_persistence_first_day_has_no_history(self):
        harvest = np.arange(48, dtype=float) + 1.0
        provider = PersistenceForecast(periods_per_day=24, initial_j=0.0)
        matrix = provider.matrix(harvest, horizon=6)
        # Day one: nothing was observed a day earlier -> the initial value.
        np.testing.assert_allclose(matrix[:18], 0.0)
        # Day two: the same slot of day one, which *was* observed.
        np.testing.assert_allclose(matrix[24], harvest[0:6])
        np.testing.assert_allclose(matrix[30], harvest[6:12])

    def test_persistence_lookahead_beyond_one_day(self):
        harvest = np.arange(72, dtype=float)
        provider = PersistenceForecast(periods_per_day=24)
        matrix = provider.matrix(harvest, horizon=30)
        # Offset 26 targets period t+26; the most recent observed same-slot
        # value is two days back.
        assert matrix[30, 26] == harvest[30 + 26 - 48]

    def test_persistence_initial_value_used_without_history(self):
        provider = PersistenceForecast(periods_per_day=24, initial_j=1.5)
        matrix = provider.matrix(np.arange(24, dtype=float), horizon=24)
        # At t = 0 nothing has been observed yet: every lookahead entry is
        # the initial value, not a peek at the trace.
        np.testing.assert_allclose(matrix[0], 1.5)

    def test_noisy_oracle_is_deterministic_under_a_seed(self):
        harvest = np.linspace(0.0, 8.0, 36)
        first = NoisyOracleForecast(noise_std=0.3, seed=11).matrix(harvest, 12)
        second = NoisyOracleForecast(noise_std=0.3, seed=11).matrix(harvest, 12)
        np.testing.assert_array_equal(first, second)
        other = NoisyOracleForecast(noise_std=0.3, seed=12).matrix(harvest, 12)
        assert not np.array_equal(first, other)

    def test_noisy_oracle_never_negative_and_unbiased_scale(self):
        harvest = np.full(200, 2.0)
        matrix = NoisyOracleForecast(noise_std=0.5, seed=3).matrix(harvest, 4)
        assert np.all(matrix >= 0.0)
        assert 1.5 < matrix.mean() < 2.5

    def test_factory_and_validation(self):
        assert make_forecast_provider("perfect").kind == "perfect"
        assert make_forecast_provider("persistence").kind == "persistence"
        assert make_forecast_provider("noisy", seed=5).seed == 5
        with pytest.raises(ValueError, match="forecast"):
            make_forecast_provider("psychic")
        with pytest.raises(ValueError, match="horizon"):
            PerfectForecast().matrix(np.ones(4), horizon=0)
        with pytest.raises(ValueError, match="non-negative"):
            PerfectForecast().matrix(np.array([-1.0]), horizon=2)


# ---------------------------------------------------------------------------
# Planners
# ---------------------------------------------------------------------------

def _single_battery(
    capacity: float = 60.0, charge: float = 30.0
) -> PlanBattery:
    scan = BatteryScan(1, capacity_j=capacity, initial_charge_j=charge)
    return PlanBattery.from_scan(scan)


def _flat_consumption(budgets):
    """A device that consumes whatever it is granted (slope-1 curve)."""
    return np.asarray(budgets, dtype=float)


class TestHorizonAverageAllocator:
    def test_budget_is_window_mean_plus_battery_surplus(self):
        planner = HorizonAverageAllocator(4)
        battery = _single_battery(capacity=60.0, charge=40.0)
        window = np.array([[8.0], [4.0], [2.0], [2.0]])
        budget = planner.step_budgets(
            window, np.array([40.0]), battery, _flat_consumption
        )
        # mean 4 J + min(charge - target 30 J, max draw 5 J) = 9 J,
        # below the supply cap (8 + 40 * 0.95).
        np.testing.assert_allclose(budget, [9.0])

    def test_zero_harvest_window_degrades_to_the_off_floor(self):
        planner = HorizonAverageAllocator(6)
        battery = _single_battery(capacity=60.0, charge=20.0)  # below target
        window = np.zeros((6, 1))
        budget = planner.step_budgets(
            window, np.array([20.0]), battery, _flat_consumption
        )
        # No forecast, no surplus: topped up to the off floor (the static
        # degraded allocation), funded by the battery.
        np.testing.assert_allclose(budget, [OFF_FLOOR_J])

    def test_empty_battery_and_dark_window_grants_zero_not_raise(self):
        planner = HorizonAverageAllocator(6)
        battery = _single_battery(capacity=60.0, charge=0.0)
        budget = planner.step_budgets(
            np.zeros((6, 1)), np.array([0.0]), battery, _flat_consumption
        )
        np.testing.assert_allclose(budget, [0.0])

    def test_supply_cap_limits_the_grant(self):
        planner = HorizonAverageAllocator(2)
        battery = _single_battery(capacity=60.0, charge=1.0)
        # Huge mean forecast, tiny current-period forecast and store: the
        # grant cannot exceed what the period could physically supply.
        window = np.array([[0.5], [100.0]])
        budget = planner.step_budgets(
            window, np.array([1.0]), battery, _flat_consumption
        )
        np.testing.assert_allclose(budget, [0.5 + 1.0 * 0.95])

    def test_window_shape_is_validated(self):
        planner = HorizonAverageAllocator(4)
        with pytest.raises(ValueError, match="window"):
            planner.step_budgets(
                np.zeros((3, 1)), np.zeros(1), _single_battery(),
                _flat_consumption,
            )


class TestMpcPlanner:
    def test_sustainable_ceiling_is_granted(self):
        planner = MpcPlanner(3, max_budget_j=5.0)
        battery = _single_battery(capacity=200.0, charge=150.0)
        window = np.full((3, 1), 10.0)   # harvest alone covers any budget
        budget = planner.step_budgets(
            window, np.array([150.0]), battery, _flat_consumption
        )
        np.testing.assert_allclose(budget, [5.0])

    def test_all_infeasible_degrades_to_supply_capped_floor_not_raise(self):
        planner = MpcPlanner(4, max_budget_j=10.0)
        battery = _single_battery(capacity=60.0, charge=0.0)
        window = np.zeros((4, 1))        # dark window, empty store
        budget = planner.step_budgets(
            window, np.array([0.0]), battery, _flat_consumption
        )
        np.testing.assert_allclose(budget, [0.0])  # nothing to grant from
        # With a sliver of charge the degraded grant is the floor capped
        # by what the store can actually deliver.
        budget = planner.step_budgets(
            window, np.array([0.1]), battery, _flat_consumption
        )
        np.testing.assert_allclose(budget, [0.1 * 0.95])

    def test_search_lands_between_floor_and_ceiling(self):
        planner = MpcPlanner(4, max_budget_j=50.0, passes=4)
        battery = _single_battery(capacity=1000.0, charge=100.0)
        window = np.zeros((4, 1))
        budget = float(
            planner.step_budgets(
                window, np.array([100.0]), battery, _flat_consumption
            )[0]
        )
        # Dark window funded purely by the store: the sustainable constant
        # spend is bounded by the deliverable-charge recurrence; the grid
        # search must land within one quantum of that boundary.
        assert OFF_FLOOR_J < budget < 50.0
        ok = planner.sustainable(
            np.array([budget]), window, np.array([100.0]), battery,
            _flat_consumption,
        )
        assert bool(ok[0])

    def test_sustainability_is_monotone_in_the_budget(self):
        planner = MpcPlanner(6, max_budget_j=20.0)
        battery = _single_battery(capacity=80.0, charge=25.0)
        rng = np.random.default_rng(5)
        window = rng.uniform(0.0, 4.0, size=(6, 1))
        budgets = np.linspace(0.1, 20.0, 64)[:, None]
        ok = planner.sustainable(
            budgets, window, np.array([25.0]), battery, _flat_consumption
        )[:, 0]
        # Once unsustainable, always unsustainable.
        assert not np.any(ok[1:] > ok[:-1])

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="passes"):
            MpcPlanner(4, max_budget_j=5.0, passes=0)
        with pytest.raises(ValueError, match="candidates"):
            MpcPlanner(4, max_budget_j=5.0, candidates=2)
        with pytest.raises(ValueError, match="max_budget"):
            MpcPlanner(4, max_budget_j=0.0)


# ---------------------------------------------------------------------------
# PlanScan vs the scalar reference
# ---------------------------------------------------------------------------

class TestPlanScanEquivalence:
    @pytest.mark.parametrize("planner", ["horizon", "mpc"])
    @pytest.mark.parametrize("forecast", ["perfect", "persistence", "noisy"])
    def test_scan_matches_scalar_reference(self, points, planner, forecast):
        policy = PlanningPolicy(
            points, planner=planner, horizon_periods=12, forecast=forecast
        )
        trace = _trace(72)
        config = CampaignConfig(use_battery=True, battery_capacity_j=80.0)
        scenario = HarvestScenario()
        fleet = HarvestingCampaign(scenario, config, engine="fleet").run(
            policy, trace
        )
        scalar = HarvestingCampaign(scenario, config, engine="scalar").run(
            policy, trace
        )
        np.testing.assert_allclose(
            _budgets(fleet), _budgets(scalar), rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            fleet.objective_values(), scalar.objective_values(),
            rtol=1e-9, atol=1e-9,
        )
        np.testing.assert_allclose(
            fleet.battery_charge_j, scalar.battery_charge_j, rtol=0, atol=1e-9
        )

    def test_multi_scenario_grid_matches_per_cell_scalar_runs(self, points):
        trace = _trace(48)
        scenarios = [
            HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
            for factor in (0.032, 0.06)
        ]
        policies = [
            PlanningPolicy(points, planner="horizon", horizon_periods=8),
            PlanningPolicy(points, planner="mpc", horizon_periods=8),
            ReapPolicy(points),
        ]
        config = CampaignConfig(use_battery=True)
        result = FleetCampaign(scenarios, config).run(policies, trace)
        for scenario_index, scenario in enumerate(scenarios):
            for policy_index, policy in enumerate(policies):
                reference = HarvestingCampaign(
                    scenario, config, engine="scalar"
                ).run(policy, trace)
                cell = result.result(policy_index, scenario_index)
                np.testing.assert_allclose(
                    cell.objective_values(),
                    reference.objective_values(),
                    rtol=1e-9, atol=1e-9,
                )
                np.testing.assert_allclose(
                    cell.battery_charge_j,
                    reference.battery_charge_j,
                    rtol=0, atol=1e-9,
                )

    def test_scenario_battery_overrides_are_honoured(self, points):
        trace = _trace(48)
        scenarios = [
            HarvestScenario(battery_capacity_j=30.0, battery_initial_j=5.0),
            HarvestScenario(),
        ]
        policy = PlanningPolicy(points, planner="mpc", horizon_periods=8)
        config = CampaignConfig(use_battery=True, battery_capacity_j=60.0)
        result = FleetCampaign(scenarios, config).run([policy], trace)
        small = result.result(0, 0)
        assert small.battery_charge_j[0] == 5.0
        assert np.max(small.battery_charge_j) <= 30.0 + 1e-9
        reference = HarvestingCampaign(
            scenarios[0], config, engine="scalar"
        ).run(policy, trace)
        np.testing.assert_allclose(
            small.battery_charge_j, reference.battery_charge_j,
            rtol=0, atol=1e-9,
        )

    def test_dark_trace_degrades_gracefully_in_both_engines(self, points):
        """Zero-harvest horizons: budgets fall to the floor, nothing raises."""
        trace = _dark_trace(30)
        config = CampaignConfig(
            use_battery=True, battery_capacity_j=20.0, battery_initial_j=2.0
        )
        for planner in ("horizon", "mpc"):
            policy = PlanningPolicy(
                points, planner=planner, horizon_periods=6,
                forecast="persistence",
            )
            fleet = HarvestingCampaign(
                HarvestScenario(), config, engine="fleet"
            ).run(policy, trace)
            scalar = HarvestingCampaign(
                HarvestScenario(), config, engine="scalar"
            ).run(policy, trace)
            np.testing.assert_allclose(
                fleet.battery_charge_j, scalar.battery_charge_j,
                rtol=0, atol=1e-9,
            )
            budgets = _budgets(fleet)
            # The store drains monotonically, the grants decay with it,
            # and once it is empty the budget sits below the off floor --
            # the degraded static allocation, with the device browning
            # out instead of anything raising.
            assert np.all(np.diff(budgets) <= 1e-2)
            assert budgets[-1] < OFF_FLOOR_J
            assert fleet.battery_charge_j[-1] < 0.1

    def test_plan_scan_validates_shapes(self, points):
        policy = PlanningPolicy(points, planner="horizon", horizon_periods=4)
        scan = PlanScan(policy.build_planner(), BatteryScan(2))
        curves = StackedConsumptionCurves([policy.consumption_curve()] * 2)
        with pytest.raises(ValueError, match="forecast tensor"):
            scan.run(np.ones((6, 2)), np.zeros((6, 3, 2)), curves)
        with pytest.raises(ValueError, match="harvest"):
            scan.run(np.ones((6, 3)), np.zeros((6, 4, 2)), curves)


# ---------------------------------------------------------------------------
# Policy wiring and fleets
# ---------------------------------------------------------------------------

class TestPlanningPolicy:
    def test_names_and_validation(self, points):
        policy = PlanningPolicy(points, planner="mpc", horizon_periods=12,
                                forecast="noisy")
        assert policy.name == "MPC12-noisy"
        assert PlanningPolicy(points).name == "Horizon24-perfect"
        with pytest.raises(ValueError, match="planner"):
            PlanningPolicy(points, planner="oracle")
        with pytest.raises(ValueError, match="forecast"):
            PlanningPolicy(points, forecast="wrong")
        with pytest.raises(ValueError, match="horizon"):
            PlanningPolicy(points, horizon_periods=0)
        with pytest.raises(ValueError, match="noise"):
            PlanningPolicy(points, forecast_noise=-0.1)

    def test_planner_key_groups_compatible_policies(self, points):
        one = PlanningPolicy(points, planner="mpc", horizon_periods=12)
        two = PlanningPolicy(points, planner="mpc", horizon_periods=12,
                             forecast="noisy", alpha=2.0)
        other = PlanningPolicy(points, planner="mpc", horizon_periods=6)
        assert one.planner_key == two.planner_key  # forecasts are data
        assert one.planner_key != other.planner_key
        assert one.planner_key != PlanningPolicy(points).planner_key

    def test_open_loop_behaves_like_reap(self, points):
        trace = _trace(24)
        config = CampaignConfig(use_battery=False)
        planned = HarvestingCampaign(HarvestScenario(), config).run(
            PlanningPolicy(points, planner="mpc"), trace
        )
        reap = HarvestingCampaign(HarvestScenario(), config).run(
            ReapPolicy(points), trace
        )
        np.testing.assert_allclose(
            planned.objective_values(), reap.objective_values(), atol=1e-12
        )

    def test_mixed_fleet_keeps_base_policies_untouched(self, points):
        """Adding planning cells must not change harvest-following cells."""
        trace = _trace(48)
        config = CampaignConfig(use_battery=True)
        base = [ReapPolicy(points), StaticPolicy(points, "DP3")]
        alone = FleetCampaign(HarvestScenario(), config).run(base, trace)
        assert alone.scan is not None  # pure-base fleets keep the scan
        mixed = FleetCampaign(HarvestScenario(), config).run(
            base + [PlanningPolicy(points, horizon_periods=8)], trace
        )
        assert mixed.scan is None  # mixed fleets: per-cell trajectories only
        for index in range(len(base)):
            np.testing.assert_allclose(
                mixed.result(index).objective_values(),
                alone.result(index).objective_values(),
                rtol=0, atol=1e-12,
            )
            np.testing.assert_allclose(
                mixed.result(index).battery_charge_j,
                alone.result(index).battery_charge_j,
                rtol=0, atol=1e-12,
            )

    def test_sharded_planning_campaign_matches_single_process(self, points):
        from repro.service.shard import run_sharded_campaign

        trace = _trace(48)
        config = CampaignConfig(use_battery=True)
        scenarios = [HarvestScenario()]
        policies = [
            PlanningPolicy(points, planner="horizon", horizon_periods=8),
            PlanningPolicy(points, planner="mpc", horizon_periods=8),
            ReapPolicy(points),
        ]
        single = run_sharded_campaign(scenarios, policies, trace, config)
        sharded = run_sharded_campaign(
            scenarios, policies, trace, config, jobs=2
        )
        for scenario_index, policy_index, cell in sharded:
            reference = single.result(policy_index, scenario_index)
            np.testing.assert_allclose(
                cell.objective_values(), reference.objective_values(),
                rtol=0, atol=1e-9,
            )


class TestPlanningExperiments:
    def test_run_plan_experiment_rows(self):
        result = run_plan_experiment(
            planner="horizon", horizon_periods=8,
            forecasts=("perfect", "persistence"), hours=48,
        )
        assert len(result.rows) == 3  # two forecasts + REAP baseline
        policies = [row[1] for row in result.rows]
        assert policies == ["Horizon8-perfect", "Horizon8-persistence", "REAP"]
        assert result.extras["num_cells"] == 3

    def test_fleet_experiment_accepts_planners(self):
        result = run_fleet_campaign_experiment(
            alphas=(1.0,), baselines=("DP1",), hours=48,
            planners=("horizon", "mpc"), horizon_periods=8,
            forecast="persistence",
        )
        policies = [row[1] for row in result.rows]
        assert "Horizon8-persistence" in policies
        assert "MPC8-persistence" in policies
        assert result.extras["num_cells"] == 4

    def test_plan_experiment_validates_forecasts(self):
        with pytest.raises(ValueError, match="forecast"):
            run_plan_experiment(forecasts=(), hours=24)

    def test_open_loop_fleet_rejects_planners(self):
        # A planner without a battery would silently collapse to REAP and
        # mislabel its rows; the experiment layer refuses the combination.
        with pytest.raises(ValueError, match="battery"):
            run_fleet_campaign_experiment(
                alphas=(1.0,), baselines=(), hours=24,
                planners=("horizon",), use_battery=False,
            )
