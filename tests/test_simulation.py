"""Tests for the policies, device simulator and harvesting campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import TimeAllocation
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario
from repro.simulation.device import DeviceConfig, DeviceSimulator
from repro.simulation.metrics import CampaignResult, PeriodOutcome, compare_campaigns
from repro.simulation.policies import (
    OnOffDutyCyclePolicy,
    OraclePolicy,
    ReapPolicy,
    StaticPolicy,
    default_policy_suite,
)
from repro.simulation.simulator import CampaignConfig, HarvestingCampaign


class TestPolicies:
    def test_reap_policy_name_and_allocation(self, table2_points):
        policy = ReapPolicy(table2_points, alpha=1.0)
        assert policy.name == "REAP"
        allocation = policy.allocate(5.0)
        assert allocation.active_time_s == pytest.approx(3600.0, rel=1e-6)

    def test_static_policy_uses_one_point(self, table2_points):
        policy = StaticPolicy(table2_points, "DP3")
        assert policy.name == "Static-DP3"
        allocation = policy.allocate(4.0)
        used = {name for name, t in allocation.as_dict().items() if t > 0}
        assert used == {"DP3"}

    def test_static_policy_unknown_point(self, table2_points):
        with pytest.raises(KeyError):
            StaticPolicy(table2_points, "DP99")

    def test_oracle_matches_reap_objective(self, table2_points):
        for budget in (1.0, 5.0, 9.0):
            reap = ReapPolicy(table2_points).allocate(budget)
            oracle = OraclePolicy(table2_points).allocate(budget)
            assert reap.objective == pytest.approx(oracle.objective, rel=1e-9)

    def test_duty_cycle_defaults_to_most_accurate_point(self, table2_points):
        policy = OnOffDutyCyclePolicy(table2_points)
        assert policy.operating_point == "DP1"
        assert policy.name == "DutyCycle-DP1"
        assert 0.0 < policy.duty_cycle(5.0) < 1.0

    def test_duty_cycle_explicit_point(self, table2_points):
        policy = OnOffDutyCyclePolicy(table2_points, operating_point="DP4")
        allocation = policy.allocate(3.0)
        assert allocation.time_for("DP4") > 0
        with pytest.raises(KeyError):
            OnOffDutyCyclePolicy(table2_points, operating_point="DP9")

    def test_default_policy_suite_composition(self, table2_points):
        suite = default_policy_suite(table2_points)
        names = [policy.name for policy in suite]
        assert names[0] == "REAP"
        assert len(suite) == 6

    def test_reap_beats_duty_cycle_baseline(self, table2_points):
        reap = ReapPolicy(table2_points)
        duty = OnOffDutyCyclePolicy(table2_points)
        for budget in np.linspace(0.5, 9.0, 10):
            assert reap.allocate(budget).objective >= duty.allocate(budget).objective - 1e-9

    def test_allocate_many_matches_scalar_loop(self, table2_points):
        budgets = list(np.linspace(0.1, 10.0, 12))
        for policy in (
            ReapPolicy(table2_points, alpha=2.0),
            OraclePolicy(table2_points, alpha=2.0),
            StaticPolicy(table2_points, "DP2", alpha=2.0),
            OnOffDutyCyclePolicy(table2_points, alpha=2.0),
        ):
            batched = policy.allocate_many(budgets)
            assert len(batched) == len(budgets)
            for budget, allocation in zip(budgets, batched):
                scalar = policy.allocate(budget)
                assert allocation.objective == pytest.approx(
                    scalar.objective, rel=1e-9, abs=1e-12
                )
                assert allocation.budget_feasible == scalar.budget_feasible

    def test_allocate_many_preserves_strict_infeasibility_semantics(
        self, table2_points
    ):
        from repro.core.allocator import AllocatorConfig, ReapAllocator
        from repro.core.problem import BudgetTooSmallError

        strict = ReapPolicy(
            table2_points,
            allocator=ReapAllocator(AllocatorConfig(clip_infeasible=False)),
        )
        with pytest.raises(BudgetTooSmallError):
            strict.allocate_many([5.0, 0.01])


class TestDeviceSimulator:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(recognition_mode="oracle")

    def test_expected_mode_counts(self, table2_points):
        allocation = TimeAllocation.single_point(
            table2_points, "DP5", active_time_s=1600.0, period_s=3600.0
        )
        outcome = DeviceSimulator().run_period(allocation)
        assert outcome.windows_total == 2250
        assert outcome.windows_observed == 1000
        assert outcome.windows_correct == pytest.approx(1000 * 0.76)
        assert outcome.observed_fraction == pytest.approx(1000 / 2250)
        assert outcome.recognition_rate == pytest.approx(1000 * 0.76 / 2250)

    def test_sampled_mode_close_to_expected(self, table2_points):
        allocation = TimeAllocation.single_point(
            table2_points, "DP2", active_time_s=3600.0, period_s=3600.0
        )
        simulator = DeviceSimulator(DeviceConfig(recognition_mode="sampled", seed=1))
        outcome = simulator.run_period(allocation)
        assert outcome.windows_correct == pytest.approx(2250 * 0.93, rel=0.05)

    def test_sampled_mode_reproducible_after_reset(self, table2_points):
        allocation = TimeAllocation.single_point(
            table2_points, "DP2", active_time_s=3600.0, period_s=3600.0
        )
        simulator = DeviceSimulator(DeviceConfig(recognition_mode="sampled", seed=9))
        first = simulator.run_period(allocation).windows_correct
        simulator.reset()
        second = simulator.run_period(allocation).windows_correct
        assert first == second

    def test_all_off_allocation_observes_nothing(self, table2_points):
        allocation = TimeAllocation.all_off(table2_points, period_s=3600.0)
        outcome = DeviceSimulator().run_period(allocation)
        assert outcome.windows_observed == 0
        assert outcome.recognition_rate == 0.0
        assert outcome.active_time_s == 0.0

    def test_run_periods_budget_length_check(self, table2_points):
        allocation = TimeAllocation.all_off(table2_points, period_s=3600.0)
        with pytest.raises(ValueError):
            DeviceSimulator().run_periods([allocation], budgets_j=[1.0, 2.0])

    def test_outcome_budget_utilisation(self, table2_points):
        allocation = ReapPolicy(table2_points).allocate(5.0)
        outcome = DeviceSimulator().run_period(allocation, energy_budget_j=5.0)
        assert outcome.budget_utilisation == pytest.approx(1.0, rel=1e-6)


class TestCampaignMetrics:
    def _outcome(self, index, objective, active=1800.0):
        return PeriodOutcome(
            period_index=index,
            energy_budget_j=5.0,
            energy_consumed_j=4.0,
            active_time_s=active,
            off_time_s=3600.0 - active,
            windows_total=2250,
            windows_observed=1000,
            windows_correct=900.0,
            objective_value=objective,
            expected_accuracy=objective,
        )

    def test_aggregates(self):
        result = CampaignResult(policy_name="REAP", alpha=1.0)
        for index in range(48):
            result.append(self._outcome(index, objective=0.5))
        assert len(result) == 48
        assert result.mean_objective == pytest.approx(0.5)
        assert result.total_active_time_s == pytest.approx(48 * 1800.0)
        assert result.overall_recognition_rate == pytest.approx(900.0 / 2250.0)
        assert result.daily_objective_totals().shape == (2,)

    def test_summary_keys(self):
        result = CampaignResult(policy_name="X", alpha=1.0)
        result.append(self._outcome(0, 0.3))
        summary = result.summary()
        assert {"periods", "mean_objective", "total_energy_j"} <= set(summary)

    def test_compare_campaigns_ratio(self):
        reference = CampaignResult(policy_name="REAP", alpha=1.0)
        baseline = CampaignResult(policy_name="DP1", alpha=1.0)
        for index in range(24):
            reference.append(self._outcome(index, objective=0.6))
            baseline.append(self._outcome(index, objective=0.3))
        comparison = compare_campaigns(reference, baseline)
        assert comparison["mean_ratio"] == pytest.approx(2.0)
        assert comparison["days_compared"] == 1.0

    def test_compare_campaigns_handles_zero_baseline(self):
        reference = CampaignResult(policy_name="REAP", alpha=1.0)
        baseline = CampaignResult(policy_name="DP1", alpha=1.0)
        for index in range(24):
            reference.append(self._outcome(index, objective=0.6))
            baseline.append(self._outcome(index, objective=0.0))
        comparison = compare_campaigns(reference, baseline)
        assert comparison["days_compared"] == 0.0
        assert np.isnan(comparison["mean_ratio"])


class TestHarvestingCampaign:
    @pytest.fixture(scope="class")
    def short_trace(self):
        return SyntheticSolarModel(seed=8).generate_days(244, 3)

    def test_open_loop_campaign(self, table2_points, short_trace):
        campaign = HarvestingCampaign(HarvestScenario())
        result = campaign.run(ReapPolicy(table2_points), short_trace)
        assert len(result) == len(short_trace)
        assert result.total_energy_consumed_j > 0

    def test_reap_outperforms_static_dp1_over_campaign(self, table2_points, short_trace):
        campaign = HarvestingCampaign(HarvestScenario())
        results = campaign.run_many(
            [ReapPolicy(table2_points), StaticPolicy(table2_points, "DP1")],
            short_trace,
        )
        assert results["REAP"].mean_objective >= results["Static-DP1"].mean_objective

    def test_battery_backed_campaign_spreads_energy_into_night(
        self, table2_points, short_trace
    ):
        open_loop = HarvestingCampaign(HarvestScenario()).run(
            ReapPolicy(table2_points), short_trace
        )
        battery = HarvestingCampaign(
            HarvestScenario(),
            CampaignConfig(use_battery=True, battery_capacity_j=80.0),
        ).run(ReapPolicy(table2_points), short_trace)
        night_hours = [
            i for i, hour in enumerate(short_trace) if hour.ghi_w_per_m2 <= 0.0
        ]
        open_night_active = sum(open_loop.outcomes[i].active_time_s for i in night_hours)
        battery_night_active = sum(battery.outcomes[i].active_time_s for i in night_hours)
        assert battery_night_active > open_night_active

    def test_energy_consumed_never_exceeds_granted_budgets(self, table2_points, short_trace):
        campaign = HarvestingCampaign(HarvestScenario())
        result = campaign.run(ReapPolicy(table2_points), short_trace)
        for outcome in result.outcomes:
            assert outcome.energy_consumed_j <= outcome.energy_budget_j + 1e-6

    def test_budgets_for_trace_matches_scenario(self, short_trace):
        scenario = HarvestScenario()
        campaign = HarvestingCampaign(scenario)
        np.testing.assert_allclose(
            campaign.budgets_for_trace(short_trace),
            scenario.budgets_from_trace(short_trace),
        )
