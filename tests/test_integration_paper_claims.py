"""Integration tests: end-to-end flows and the paper's qualitative claims.

These tests stitch the subsystems together the way the evaluation does --
design points into the optimiser, solar traces into budgets, budgets into
campaigns -- and assert the *shape* results the paper reports (who wins,
where the crossovers are), not exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ReapAllocator,
    ReapController,
    ReapProblem,
    StaticController,
    table2_design_points,
)
from repro.analysis.sweep import EnergySweep
from repro.data.paper_constants import ACTIVITY_PERIOD_S
from repro.harvesting import HarvestScenario, SyntheticSolarModel
from repro.simulation import (
    HarvestingCampaign,
    ReapPolicy,
    StaticPolicy,
    compare_campaigns,
)


class TestSection52ExpectedAccuracyAndActiveTime:
    """Figure 5 behaviour: regions, dominance and the DP4/DP5 blend."""

    @pytest.fixture(scope="class")
    def sweep(self):
        points = table2_design_points()
        return EnergySweep(points, alpha=1.0).run(np.linspace(0.2, 10.4, 60))

    def test_region1_dp5_beats_dp1_on_expected_accuracy(self, sweep):
        budgets = sweep.budgets_j
        region1 = budgets < 4.0
        dp5 = sweep.static("DP5").expected_accuracy[region1]
        dp1 = sweep.static("DP1").expected_accuracy[region1]
        assert np.all(dp5 >= dp1)
        assert np.mean(dp5 - dp1) > 0.1

    def test_region3_all_points_saturate(self, sweep):
        budgets = sweep.budgets_j
        region3 = budgets > 10.0
        for name in ("DP1", "DP2", "DP3", "DP4", "DP5"):
            active = sweep.static(name).active_time_s[region3]
            assert np.all(active >= ACTIVITY_PERIOD_S - 1e-6)

    def test_reap_equals_dp1_accuracy_beyond_saturation(self, sweep):
        region3 = sweep.budgets_j > 10.0
        reap = sweep.reap.expected_accuracy[region3]
        assert np.all(np.abs(reap - 0.94) < 1e-6)

    def test_reap_matches_or_exceeds_every_static_everywhere(self, sweep):
        assert sweep.reap_dominates_everywhere()

    def test_reap_active_time_always_matches_best_static(self, sweep):
        best_static_active = np.max(
            [sweep.static(name).active_time_s for name in sweep.static_names], axis=0
        )
        assert np.all(sweep.reap.active_time_s >= best_static_active - 1e-6)

    def test_accuracy_crossover_dp5_saturates_then_loses(self, sweep):
        """DP5's expected accuracy saturates at 0.76 while REAP keeps rising."""
        budgets = sweep.budgets_j
        high = budgets > 6.0
        dp5 = sweep.static("DP5").expected_accuracy[high]
        reap = sweep.reap.expected_accuracy[high]
        assert np.all(np.abs(dp5 - 0.76) < 1e-6)
        assert np.all(reap > dp5 + 0.04)


class TestSection53AlphaTradeoff:
    """Figure 6 behaviour at alpha = 2."""

    @pytest.fixture(scope="class")
    def sweep(self):
        points = table2_design_points()
        return EnergySweep(points, alpha=2.0).run(np.linspace(0.5, 10.4, 50))

    def test_dp4_is_best_static_below_6j(self, sweep):
        budgets = sweep.budgets_j
        low = (budgets > 1.0) & (budgets < 6.0)
        dp4 = sweep.static("DP4").objective[low]
        for name in ("DP1", "DP2", "DP3", "DP5"):
            assert np.all(dp4 >= sweep.static(name).objective[low] - 1e-9)

    def test_higher_accuracy_points_take_over_at_large_budgets(self, sweep):
        budgets = sweep.budgets_j
        high = budgets > 9.0
        dp1 = sweep.static("DP1").objective[high]
        dp4 = sweep.static("DP4").objective[high]
        assert np.all(dp1 > dp4)

    def test_reap_always_beats_dp5_at_alpha2(self, sweep):
        dp5 = sweep.static("DP5").objective
        reap = sweep.reap.objective
        positive = reap > 1e-9
        assert np.all(reap[positive] >= dp5[positive] - 1e-12)
        # Once DP5 has saturated (its value is capped by its 76% accuracy)
        # REAP pulls clearly ahead by mixing in more accurate design points.
        mid = (sweep.budgets_j > 4.5) & (sweep.budgets_j < 9.0)
        assert np.all(reap[mid] > dp5[mid] + 0.01)


class TestSection54SolarCaseStudy:
    """Figure 7 behaviour on the synthetic September trace."""

    @pytest.fixture(scope="class")
    def campaign_setup(self):
        points = table2_design_points()
        trace = SyntheticSolarModel(seed=2015).generate_september()
        campaign = HarvestingCampaign(HarvestScenario())
        return points, trace, campaign

    def _ratios(self, campaign_setup, alpha, baseline):
        points, trace, campaign = campaign_setup
        reap = campaign.run(ReapPolicy(points, alpha=alpha), trace)
        static = campaign.run(StaticPolicy(points, baseline, alpha=alpha), trace)
        return compare_campaigns(reap, static)

    def test_reap_beats_dp1_at_low_alpha(self, campaign_setup):
        comparison = self._ratios(campaign_setup, alpha=0.5, baseline="DP1")
        assert comparison["mean_ratio"] > 1.3
        assert comparison["min_ratio"] >= 1.0 - 1e-9

    def test_gain_over_dp1_shrinks_with_alpha(self, campaign_setup):
        low = self._ratios(campaign_setup, alpha=0.5, baseline="DP1")
        high = self._ratios(campaign_setup, alpha=8.0, baseline="DP1")
        assert high["mean_ratio"] < low["mean_ratio"]
        assert high["mean_ratio"] > 1.0

    def test_gain_over_dp5_grows_with_alpha(self, campaign_setup):
        low = self._ratios(campaign_setup, alpha=0.5, baseline="DP5")
        high = self._ratios(campaign_setup, alpha=8.0, baseline="DP5")
        assert high["mean_ratio"] > low["mean_ratio"]
        assert low["mean_ratio"] >= 1.0 - 1e-9

    def test_gain_over_dp3_smaller_than_over_dp1(self, campaign_setup):
        vs_dp1 = self._ratios(campaign_setup, alpha=1.0, baseline="DP1")
        vs_dp3 = self._ratios(campaign_setup, alpha=1.0, baseline="DP3")
        assert vs_dp3["mean_ratio"] < vs_dp1["mean_ratio"]
        assert vs_dp3["mean_ratio"] >= 1.0 - 1e-9


class TestEndToEndControllerFlow:
    def test_controller_over_synthetic_day(self):
        points = table2_design_points()
        trace = SyntheticSolarModel(seed=3).generate_days(172, 1)
        budgets = HarvestScenario().budgets_from_trace(trace)
        controller = ReapController(points, alpha=1.0)
        series = controller.run(budgets, labels=trace.labels)
        assert len(series) == 24
        # Daytime hours should be active, deep-night hours off.
        noon_index = 12
        midnight_index = 0
        assert series[noon_index].active_time_s > 0
        assert series[midnight_index].active_time_s == 0

    def test_reap_vs_static_full_stack(self):
        points = table2_design_points()
        trace = SyntheticSolarModel(seed=4).generate_days(244, 2)
        budgets = HarvestScenario().budgets_from_trace(trace)
        reap_series = ReapController(points).run(budgets)
        dp1_series = StaticController(points, "DP1").run(budgets)
        assert reap_series.mean_expected_accuracy >= dp1_series.mean_expected_accuracy
        assert reap_series.total_active_time_s >= dp1_series.total_active_time_s

    def test_allocator_solution_feasible_for_every_trace_hour(self):
        points = tuple(table2_design_points())
        trace = SyntheticSolarModel(seed=5).generate_days(1, 2)
        budgets = HarvestScenario().budgets_from_trace(trace)
        allocator = ReapAllocator()
        for budget in budgets:
            allocation = allocator.solve(
                ReapProblem(points, energy_budget_j=max(budget, 0.0))
            )
            if allocation.budget_feasible:
                allocation.check(budget)
