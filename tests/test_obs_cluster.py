"""Cluster-scope observability: exact merges, liveness, durable timelines.

Three layers of coverage:

- pure-function algebra: counter/histogram merges are associative and
  commutative, histogram quantiles return documented sentinels on empty
  input, and a property test pins the merged-quantile bounds;
- store behaviour: snapshot TTL/dead-pid expiry, span ring persistence,
  and the per-job events timeline;
- end-to-end subprocess tests in the :mod:`test_restart_resume` style:
  ``--procs 2`` cluster scrapes equal the sum of per-process scrapes,
  the events timeline survives SIGKILL/restart with lease owners, and a
  trace resolves from a front-end that never handled its request.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.obs.cluster import (
    build_snapshot,
    decode_snapshot,
    encode_snapshot,
    merged_families,
    render_cluster,
)
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.slo import SloTracker, merged_burn_rates
from repro.service.requests import CampaignRequest
from repro.service.store import CampaignStore

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


# --- histogram quantile sentinels and merge algebra -------------------------------
class TestHistogramQuantiles:
    def test_empty_histogram_quantiles_are_zero(self):
        histogram = LatencyHistogram()
        for fraction in (0.0, 0.5, 0.95, 0.99, 1.0):
            value = histogram.quantile(fraction)
            assert value == 0.0
            assert value == value  # never NaN
        doc = histogram.to_json_dict()
        assert doc["p50_ms"] == doc["p95_ms"] == doc["p99_ms"] == 0.0

    def test_single_observation_quantiles_are_the_observation(self):
        histogram = LatencyHistogram()
        histogram.record(0.004)
        for fraction in (0.5, 0.95, 0.99):
            # Bucket estimate clamped to the max seen == the observation.
            assert histogram.quantile(fraction) == pytest.approx(0.004)

    def test_quantile_rejects_out_of_range_fractions(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_merge_is_exact_on_bucket_counts(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for seconds in (0.001, 0.002, 0.2):
            a.record(seconds)
        for seconds in (0.004, 5.0):
            b.record(seconds)
        a.merge(b)
        counts, count, total_s, max_s = a.snapshot()
        assert count == 5
        assert sum(counts) == 5
        assert total_s == pytest.approx(0.001 + 0.002 + 0.2 + 0.004 + 5.0)
        assert max_s == pytest.approx(5.0)

    def test_from_snapshot_roundtrip(self):
        histogram = LatencyHistogram()
        for seconds in (0.003, 0.05, 1.2):
            histogram.record(seconds)
        rebuilt = LatencyHistogram.from_snapshot(*histogram.snapshot())
        assert rebuilt.snapshot() == histogram.snapshot()
        assert rebuilt.quantile(0.5) == histogram.quantile(0.5)

    def test_from_snapshot_rejects_wrong_bucket_count(self):
        with pytest.raises(ValueError):
            LatencyHistogram.from_snapshot([0, 1], 1, 0.5, 0.5)

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.lists(
            st.floats(min_value=1e-6, max_value=60.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=40,
        ),
        b=st.lists(
            st.floats(min_value=1e-6, max_value=60.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=40,
        ),
        fraction=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_merged_quantiles_bounded_by_inputs(self, a, b, fraction):
        """quantile(merge(A, B)) is bounded by min/max of the raw inputs.

        The estimator reports bucket upper bounds clamped to the largest
        sample seen, so every quantile of the merged histogram sits at or
        above the smallest recorded sample and at or below the largest --
        never NaN, never outside the observed range.  (Positive fractions
        only: quantile(0) is the degenerate "0 of N samples" rank.)
        """
        ha, hb, merged = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for seconds in a:
            ha.record(seconds)
            merged.record(seconds)
        for seconds in b:
            hb.record(seconds)
            merged.record(seconds)
        qm = merged.quantile(fraction)
        assert min(a + b) <= qm <= max(a + b)
        # Merging is exact: merge() agrees with recording the union
        # directly, and the merged quantile never undercuts the pointwise
        # smaller input quantile (the mixture CDF is between the two).
        assert qm >= min(ha.quantile(fraction), hb.quantile(fraction))
        ha.merge(hb)
        assert ha.quantile(fraction) == qm


# --- snapshot family merges --------------------------------------------------------
def _snapshot_with(counter_by, latencies):
    """A registry snapshot with one counter family and one histogram."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_requests_total", "requests", ("endpoint",))
    for endpoint, count in counter_by.items():
        for _ in range(count):
            counter.inc(endpoint=endpoint)
    histogram = registry.histogram("repro_phase_seconds", "phases", ("phase",))
    for seconds in latencies:
        histogram.observe(seconds, phase="solve")
    return {"families": registry.snapshot()}


def _counter_value(families, name, **labels):
    total = 0.0
    for suffix, sample_labels, value in families[name]["samples"]:
        if suffix == "" and all(
            sample_labels.get(k) == v for k, v in labels.items()
        ):
            total += value
    return total


class TestMergedFamilies:
    def test_counters_sum_exactly(self):
        a = _snapshot_with({"GET /stats": 3}, [0.001])
        b = _snapshot_with({"GET /stats": 4, "POST /allocate": 2}, [0.002])
        merged = merged_families([a, b])
        assert _counter_value(
            merged, "repro_requests_total", endpoint="GET /stats"
        ) == 7.0
        assert _counter_value(
            merged, "repro_requests_total", endpoint="POST /allocate"
        ) == 2.0

    def test_merge_is_commutative_and_associative(self):
        a = _snapshot_with({"x": 1}, [0.001, 0.004])
        b = _snapshot_with({"x": 2, "y": 5}, [0.016])
        c = _snapshot_with({"y": 1}, [0.001, 2.0])
        ab_c = merged_families([*(a, b), c])
        a_bc = merged_families([a, *(b, c)])
        cba = merged_families([c, b, a])
        assert ab_c == a_bc == cba
        # Folding a pre-merged pair in again is the same as a flat merge:
        # merged snapshots are themselves valid snapshot families.
        refolded = merged_families([{"families": merged_families([a, b])}, c])
        assert refolded == ab_c

    def test_gauges_are_not_summed(self):
        registry = MetricsRegistry()
        registry.gauge("repro_entries", "entries").set(3)
        snapshot = {"families": registry.snapshot()}
        merged = merged_families([snapshot, snapshot])
        assert "repro_entries" not in merged

    def test_histogram_buckets_sum_elementwise(self):
        a = _snapshot_with({}, [0.001, 0.001, 0.5])
        b = _snapshot_with({}, [0.001])
        merged = merged_families([a, b])
        samples = merged["repro_phase_seconds"]["samples"]
        counts = {
            labels["le"]: value
            for suffix, labels, value in samples
            if suffix == "_bucket"
        }
        assert counts["+Inf"] == 4.0
        assert [v for s, _l, v in samples if s == "_count"] == [4.0]
        [total_s] = [v for s, _l, v in samples if s == "_sum"]
        assert total_s == pytest.approx(0.001 * 3 + 0.5)


class TestRenderCluster:
    def test_proc_labels_and_synthesized_families(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "requests").inc()
        slo = SloTracker({"allocate": 5.0})
        now = time.time()
        slo.observe("POST /allocate", 0.001, now=now)
        slo.observe("POST /allocate", 0.100, now=now)
        snap_a = build_snapshot(registry, slo, proc="host:1")
        snap_b = build_snapshot(registry, slo, proc="host:2")
        text = render_cluster([snap_a, snap_b])
        assert 'proc="host:1"' in text
        assert 'proc="host:2"' in text
        assert "repro_cluster_frontends 2" in text
        assert "repro_cluster_slo_events_total" in text
        assert "repro_cluster_slo_burn_rate" in text
        # Every non-comment line is name{labels} value.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)

    def test_snapshot_roundtrips_through_wire_encoding(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "requests").inc()
        snapshot = build_snapshot(registry, proc="host:9")
        assert decode_snapshot(encode_snapshot(snapshot)) == snapshot


class TestMergedBurnRates:
    def test_merged_epochs_reconstruct_cluster_burn(self):
        now = time.time()
        trackers = [SloTracker({"allocate": 10.0}) for _ in range(2)]
        # 1 bad + 4 good on each process: cluster bad fraction 0.2.
        for tracker in trackers:
            tracker.observe("POST /allocate", 1.0, now=now)
            for _ in range(4):
                tracker.observe("POST /allocate", 0.001, now=now)
        merged = merged_burn_rates(
            [tracker.snapshot(now) for tracker in trackers], now=now
        )
        objective = merged["objectives"]["allocate"]
        assert objective["total"] == 10
        assert objective["good"] == 8
        assert objective["burn_rate_5m"] == pytest.approx(0.2 / 0.01)


# --- store: snapshot liveness, span ring, events ----------------------------------
class TestStoreObservability:
    def test_dead_process_snapshots_expire(self, tmp_path):
        path = str(tmp_path / "jobs.db")
        live = CampaignStore(path)
        host = socket.gethostname()
        dead = CampaignStore(path, owner=f"{host}:999999:dd")
        dead.publish_snapshot(b'{"proc": "dead"}')
        live.publish_snapshot(b'{"proc": "live"}')
        procs = [proc for proc, _, _ in live.live_snapshots()]
        # The dead pid is probed same-host and dropped immediately.
        assert procs == [live.proc]
        dead.close()
        live.close()

    def test_stale_snapshots_expire_after_ttl(self, tmp_path):
        store = CampaignStore(str(tmp_path / "jobs.db"))
        store.publish_snapshot(b"{}", proc="otherhost:1")
        assert [p for p, _, _ in store.live_snapshots(ttl_s=60.0)
                if p == "otherhost:1"]
        time.sleep(0.05)
        assert not [p for p, _, _ in store.live_snapshots(ttl_s=0.01)
                    if p == "otherhost:1"]
        # Expiry deleted the row: a generous TTL cannot resurrect it.
        assert not [p for p, _, _ in store.live_snapshots(ttl_s=60.0)
                    if p == "otherhost:1"]
        store.close()

    def test_republish_overwrites_snapshot(self, tmp_path):
        store = CampaignStore(str(tmp_path / "jobs.db"))
        store.publish_snapshot(b'{"v": 1}')
        store.publish_snapshot(b'{"v": 2}')
        rows = store.live_snapshots()
        assert len(rows) == 1
        assert rows[0][1] == b'{"v": 2}'
        store.close()

    def test_span_ring_retention(self, tmp_path):
        store = CampaignStore(str(tmp_path / "jobs.db"))
        records = [
            {"trace_id": f"{i:032x}", "span_id": f"{i:016x}",
             "name": "x", "start_s": float(i)}
            for i in range(10)
        ]
        assert store.persist_spans(records, retention=4) == 10
        assert store.trace_spans(f"{1:032x}") == []  # aged out of the ring
        assert store.trace_spans(f"{9:032x}")[0]["start_s"] == 9.0
        store.close()

    def test_events_timeline_records_owners(self, tmp_path):
        store = CampaignStore(str(tmp_path / "jobs.db"))
        request = CampaignRequest(hours=24, alphas=(1.0,), baselines=("DP1",))
        job_id, _created = store.submit(request)
        assert store.acquire_lease(job_id)
        store.start(job_id, 24)
        store.fail(job_id, "boom")
        events = store.events(job_id)
        kinds = [event["kind"] for event in events]
        assert kinds == ["submit", "lease_acquire", "start", "fail"]
        assert all(event["owner"] == store.proc for event in events)
        assert [event["seq"] for event in events] == sorted(
            event["seq"] for event in events
        )
        store.close()


# --- end-to-end: --procs 2, SIGKILL, cross-process traces -------------------------
REQUEST = CampaignRequest(hours=96, alphas=(1.0,), baselines=("DP1",))


def _serve(tmp_path, *extra_args):
    """Launch one ``repro serve`` subprocess; returns (proc, port)."""
    port_file = tmp_path / f"port-{time.monotonic_ns()}"
    log_path = tmp_path / f"log-{time.monotonic_ns()}"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", str(port_file), *extra_args],
            env=env, stdout=log, stderr=subprocess.STDOUT,
        )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(
                f"server died during startup:\n{log_path.read_text()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"server never wrote its port:\n{log_path.read_text()}")


def _get(port, path, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    return json.loads(urllib.request.urlopen(request).read())


def _get_text(port, path):
    return urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}"
    ).read().decode()


def _submit(port, request):
    body = json.dumps(request.to_json_dict()).encode("utf-8")
    raw = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/campaign", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    return json.loads(urllib.request.urlopen(raw).read())


def _wait_done(port, campaign_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = _get(port, f"/v1/campaign/{campaign_id}")
        if status["status"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.1)
    raise TimeoutError(f"campaign {campaign_id} did not finish")


def _parse_counter(text, name, **labels):
    """Sum a counter family's samples matching the given labels."""
    total = 0.0
    for line in text.splitlines():
        if not line.startswith(name) or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if all(f'{key}="{val}"' in series for key, val in labels.items()):
            total += float(value)
    return total


@pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT not available on this platform",
)
class TestClusterScrapes:
    def test_cluster_scope_equals_sum_of_self_scrapes(self, tmp_path):
        store = tmp_path / "jobs.db"
        proc, port = _serve(tmp_path, "--store", str(store), "--procs", "2")
        try:
            pids = set()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and len(pids) < 2:
                pids.add(_get(port, "/v1/healthz")["pid"])
                time.sleep(0.01)
            assert len(pids) == 2, f"only {pids} answered"
            # A traffic-stable counter (scraping mutates request counters,
            # so those cannot be compared across scrapes): journal appends
            # from one finished campaign, fixed once the job is done.
            submitted = _submit(port, REQUEST)
            _wait_done(port, submitted["campaign_id"])

            # Hammer /metrics until both procs' self scrapes were seen.
            # The serving proc is read from the response itself (its
            # repro_frontend_up label) -- a separate /healthz call could
            # be routed to the *other* pid and mislabel the counter.
            per_pid = {}
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and len(per_pid) < 2:
                text = _get_text(port, "/v1/metrics")
                served_by = text.split('repro_frontend_up{proc="')[1]
                per_pid[served_by.split('"')[0]] = _parse_counter(
                    text, "repro_store_appends_total", kind="shard_done"
                )
                time.sleep(0.01)
            assert len(per_pid) == 2

            # The cluster scrape merges *stored* snapshots: the campaign
            # pid's may be up to one publish beat (~2 s) stale, so poll
            # until the merged counter catches up with the self scrapes.
            expected = sum(per_pid.values())
            deadline = time.monotonic() + 30.0
            while True:
                cluster = _get_text(port, "/v1/metrics?scope=cluster")
                merged = _parse_counter(
                    cluster, "repro_store_appends_total", kind="shard_done"
                )
                if merged == pytest.approx(expected):
                    break
                assert time.monotonic() < deadline, (merged, expected)
                time.sleep(0.25)
            assert 'proc="' in cluster
            assert "repro_cluster_frontends 2" in cluster
            # Both processes' liveness gauges appear with proc labels.
            up_procs = {
                line.split('proc="')[1].split('"')[0]
                for line in cluster.splitlines()
                if line.startswith("repro_frontend_up{")
            }
            assert len(up_procs) == 2
        finally:
            proc.kill()
            proc.wait(timeout=10)

    def test_trace_resolves_from_any_frontend(self, tmp_path):
        store = tmp_path / "jobs.db"
        proc, port = _serve(tmp_path, "--store", str(store), "--procs", "2")
        try:
            trace_id = "ab" * 16
            traceparent = f"00-{trace_id}-{'cd' * 8}-01"
            first = _get(
                port, "/v1/healthz", headers={"traceparent": traceparent}
            )
            # Wait for the handling process's publisher beat to drain the
            # span, then require every process to resolve the trace.
            deadline = time.monotonic() + 30.0
            answers = set()
            spans = None
            while time.monotonic() < deadline and len(answers) < 2:
                try:
                    doc = _get(port, f"/v1/trace/{trace_id}")
                except urllib.error.HTTPError:
                    time.sleep(0.2)
                    continue
                spans = doc["spans"]
                answers.add(_get(port, "/v1/healthz")["pid"])
                time.sleep(0.01)
            assert len(answers) == 2, f"only {answers} answered the trace"
            assert spans and spans[0]["trace_id"] == trace_id
            assert first["pid"] in answers  # handled by one of them
        finally:
            proc.kill()
            proc.wait(timeout=10)


class TestEventsTimelineDurability:
    def test_events_survive_sigkill_and_restart(self, tmp_path):
        store = tmp_path / "jobs.db"
        proc, port = _serve(tmp_path, "--store", str(store))
        try:
            submitted = _submit(port, REQUEST)
            campaign_id = submitted["campaign_id"]
            _wait_done(port, campaign_id)
            events = _get(port, f"/v1/campaign/{campaign_id}/events")["events"]
            kinds = [event["kind"] for event in events]
            assert kinds[0] == "submit"
            assert "lease_acquire" in kinds
            assert "shard_done" in kinds
            assert kinds[-1] == "finish"
            owners = {event["owner"] for event in events}
            assert all(owner for owner in owners)
        finally:
            proc.kill()
            proc.wait(timeout=10)

        # SIGKILL + restart: the journaled timeline replays identically,
        # extended only by whatever the restart appends (nothing here --
        # the job already finished).
        proc, port = _serve(tmp_path, "--store", str(store))
        try:
            replayed = _get(port, f"/v1/campaign/{campaign_id}/events")
            assert [e["kind"] for e in replayed["events"]] == kinds
            assert _get(port, f"/v1/campaign/{campaign_id}")["status"] == "done"
        finally:
            proc.kill()
            proc.wait(timeout=10)

    def test_events_404_for_unknown_campaign(self, tmp_path):
        proc, port = _serve(
            tmp_path, "--store", str(tmp_path / "jobs.db")
        )
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/v1/campaign/c999/events")
            assert excinfo.value.code == 404
        finally:
            proc.kill()
            proc.wait(timeout=10)
