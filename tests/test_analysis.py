"""Tests for the sweep machinery, reporting helpers and experiment runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentResult,
    run_alpha_sensitivity_experiment,
    run_figure4_experiment,
    run_figure5a_experiment,
    run_figure5b_experiment,
    run_figure6_experiment,
    run_headline_claims_experiment,
    run_offloading_experiment,
    run_pareto_subset_ablation,
    run_pivot_rule_ablation,
    run_solver_scaling_experiment,
)
from repro.analysis.reporting import (
    dicts_to_rows,
    format_table,
    format_value,
    percent,
    ratio,
    rows_to_csv,
)
from repro.analysis.sweep import EnergySweep, default_budget_grid


class TestReporting:
    def test_format_value_float_precision(self):
        assert format_value(1.23456, precision=2) == "1.23"
        assert format_value(True) == "yes"
        assert format_value("text") == "text"
        assert format_value(float("nan")) == "nan"
        assert format_value(1e-6) == "1.000e-06"

    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_rows_to_csv_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        text = rows_to_csv(["x", "y"], [[1, 2], [3, 4]], path=str(path))
        assert "x,y" in text
        assert path.read_bytes().decode() == text

    def test_dicts_to_rows_projection(self):
        rows = dicts_to_rows([{"a": 1, "b": 2}, {"a": 3}], ["a", "b"])
        assert rows == [[1, 2], [3, ""]]

    def test_percent_and_ratio(self):
        assert percent(0.4637) == "46.4%"
        assert ratio(2.345) == "2.35x"


class TestEnergySweep:
    def test_default_budget_grid_spans_operating_range(self, table2_points):
        grid = default_budget_grid(table2_points, num_points=10)
        assert grid[0] == pytest.approx(0.18)
        assert grid[-1] == pytest.approx(9.936 * 1.05, rel=1e-6)
        with pytest.raises(ValueError):
            default_budget_grid(table2_points, num_points=1)

    def test_sweep_series_shapes(self, table2_points):
        sweep = EnergySweep(table2_points, alpha=1.0)
        result = sweep.run(np.linspace(0.2, 10.0, 8), keep_allocations=True)
        assert result.reap.expected_accuracy.shape == (8,)
        assert set(result.static_names) == {"DP1", "DP2", "DP3", "DP4", "DP5"}
        assert len(result.reap.allocations) == 8

    def test_sweep_drops_allocations_by_default(self, table2_points):
        result = EnergySweep(table2_points, alpha=1.0).run(np.linspace(0.2, 10.0, 8))
        assert result.reap.allocations == []
        assert result.static("DP1").allocations == []

    def test_batch_and_scalar_engines_agree(self, table2_points):
        budgets = np.linspace(0.1, 10.5, 33)
        batch = EnergySweep(table2_points, alpha=2.0, engine="batch").run(budgets)
        scalar = EnergySweep(table2_points, alpha=2.0, engine="scalar").run(budgets)
        for name in ["REAP"] + batch.static_names:
            np.testing.assert_allclose(
                batch.series[name].objective,
                scalar.series[name].objective,
                rtol=1e-9,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                batch.series[name].active_time_s,
                scalar.series[name].active_time_s,
                rtol=1e-9,
                atol=1e-6,
            )

    def test_custom_allocator_selects_scalar_engine(self, table2_points):
        from repro.core.allocator import AllocatorConfig, ReapAllocator

        sweep = EnergySweep(
            table2_points,
            allocator=ReapAllocator(AllocatorConfig(formulation="full")),
        )
        assert not sweep.uses_batch_engine
        assert EnergySweep(table2_points).uses_batch_engine
        with pytest.raises(ValueError):
            EnergySweep(table2_points, engine="nope")

    def test_reap_dominates_everywhere(self, table2_points):
        result = EnergySweep(table2_points, alpha=1.0).run()
        assert result.reap_dominates_everywhere()

    def test_normalized_active_time_never_above_one(self, table2_points):
        result = EnergySweep(table2_points, alpha=1.0).run()
        for name in result.static_names:
            assert np.all(result.normalized_active_time(name) <= 1.0 + 1e-9)

    def test_normalized_objective_never_above_one(self, table2_points):
        result = EnergySweep(table2_points, alpha=2.0).run()
        for name in result.static_names:
            assert np.all(result.normalized_objective(name) <= 1.0 + 1e-9)

    def test_saturation_budgets_ordered_by_power(self, table2_points):
        result = EnergySweep(table2_points, alpha=1.0).run(
            np.linspace(0.2, 10.5, 120)
        )
        dp5 = result.saturation_budget_j("DP5")
        dp1 = result.saturation_budget_j("DP1")
        assert dp5 < dp1
        assert dp5 == pytest.approx(4.3, abs=0.4)
        assert dp1 == pytest.approx(9.9, abs=0.4)

    def test_empty_budget_grid_rejected(self, table2_points):
        with pytest.raises(ValueError):
            EnergySweep(table2_points).run([])


class TestExperimentResult:
    def test_text_and_csv_and_column(self):
        result = ExperimentResult(
            name="demo", headers=["a", "b"], rows=[[1, 2.0], [3, 4.0]]
        )
        assert "demo" in result.to_text()
        assert "a,b" in result.to_csv()
        assert result.column("b") == [2.0, 4.0]
        with pytest.raises(ValueError):
            result.column("missing")


class TestFastExperiments:
    """Experiments that do not need classifier training (run in seconds)."""

    def test_figure4(self):
        result = run_figure4_experiment()
        assert result.extras["total_j"] == pytest.approx(9.9, rel=0.05)
        assert result.extras["sensor_fraction"] == pytest.approx(0.47, abs=0.05)
        fractions = result.column("fraction")
        assert sum(fractions) == pytest.approx(1.0, abs=1e-6)

    def test_figure5a_reap_dominates(self):
        result = run_figure5a_experiment(num_budgets=15)
        assert result.extras["reap_dominates"]
        reap_series = result.column("REAP_%")
        dp1_series = result.column("DP1_%")
        assert all(r >= d - 1e-6 for r, d in zip(reap_series, dp1_series))

    def test_figure5b_ratios_bounded(self):
        result = run_figure5b_experiment(num_budgets=15)
        for name in ("DP1", "DP3", "DP5"):
            values = result.column(f"{name}_norm_active")
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)

    def test_figure5b_dp5_matches_reap_active_time(self):
        result = run_figure5b_experiment(num_budgets=15)
        dp5 = result.column("DP5_norm_active")
        # DP5 has the lowest power so, whenever the device can be on at all,
        # its active time matches REAP's (the ratio is 0 only at the budget
        # floor where both are entirely off).
        positive = [v for v in dp5 if v > 0]
        assert positive
        assert all(v == pytest.approx(1.0, abs=1e-6) for v in positive)

    def test_figure6_normalised_objective(self):
        result = run_figure6_experiment(num_budgets=15)
        assert result.extras["reap_dominates"]
        for name in ("DP1", "DP5"):
            values = result.column(f"{name}_norm_J")
            assert all(v <= 1.0 + 1e-9 for v in values)

    def test_figure6_dp5_declines_with_budget(self):
        result = run_figure6_experiment(num_budgets=25)
        dp5 = result.column("DP5_norm_J")
        # Once the budget is generous, DP5's 76% accuracy caps its value.
        assert dp5[-1] < 0.75

    def test_headline_claims_close_to_paper(self):
        result = run_headline_claims_experiment(num_budgets=40)
        measured = {row[0]: row[2] for row in result.rows}
        assert measured["expected accuracy gain vs DP1 (mean over sweep)"] == pytest.approx(0.46, abs=0.10)
        assert measured["active time gain vs DP1 (mean over sweep)"] == pytest.approx(0.66, abs=0.15)
        assert measured["max active-time ratio vs DP1 (Region 1)"] == pytest.approx(2.3, abs=0.4)
        assert measured["DP4 share of active time at 5 J"] == pytest.approx(0.42, abs=0.03)
        assert measured["DP5 share of active time at 5 J"] == pytest.approx(0.58, abs=0.03)

    def test_offloading_experiment(self):
        result = run_offloading_experiment()
        label_row, raw_row = result.rows
        assert label_row[1] == pytest.approx(0.38, abs=0.02)
        assert raw_row[1] == pytest.approx(5.5, abs=0.3)
        assert result.extras["offload_penalty_factor"] > 10

    def test_solver_scaling_experiment(self):
        result = run_solver_scaling_experiment(sizes=(5, 20), repeats=3)
        assert len(result.rows) == 2
        assert all(row[1] > 0 for row in result.rows)

    def test_alpha_sensitivity_monotone_accuracy_shift(self):
        result = run_alpha_sensitivity_experiment(alphas=(0.5, 1.0, 4.0, 8.0))
        dp5_shares = result.column("DP5_share")
        assert dp5_shares[0] >= dp5_shares[-1]

    def test_pareto_subset_ablation_monotone(self):
        result = run_pareto_subset_ablation(subset_sizes=(2, 5), num_budgets=15)
        objectives = result.column("mean_objective")
        # More design points can only help the optimum.
        assert objectives[-1] >= objectives[0] - 1e-9

    def test_pivot_rule_ablation_same_objective(self):
        result = run_pivot_rule_ablation(num_budgets=15)
        assert result.extras["objective_gap"] == pytest.approx(0.0, abs=1e-9)
